// Unit tests for the foundation utilities: Status/Result, Slice, Arena,
// Random/Zipf, string helpers and hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/arena.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/string_util.h"

namespace nodb {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::IOError("disk on fire").ToString(),
            "IOError: disk on fire");
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status PropagatesViaMacro(int v) {
  NODB_RETURN_NOT_OK(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro(1).ok());
  EXPECT_TRUE(PropagatesViaMacro(-1).IsInvalidArgument());
}

// ------------------------------------------------------------------ Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Result<int> ChainedViaMacro(int v) {
  NODB_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.ValueOr(7), 7);
  EXPECT_EQ(ok.ValueOr(7), 42);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*ChainedViaMacro(1), 3);
  EXPECT_FALSE(ChainedViaMacro(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// ------------------------------------------------------------------- Slice

TEST(SliceTest, BasicViews) {
  std::string s = "hello,world";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 11u);
  EXPECT_EQ(slice[5], ',');
  EXPECT_EQ(slice.SubSlice(6, 5).ToString(), "world");
  EXPECT_EQ(slice.SubSlice(6, 100).ToString(), "world");
  EXPECT_TRUE(slice.SubSlice(20, 5).empty());
  slice.RemovePrefix(6);
  EXPECT_EQ(slice.ToString(), "world");
}

TEST(SliceTest, Equality) {
  EXPECT_EQ(Slice("abc"), Slice(std::string("abc")));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_NE(Slice("abc"), Slice("ab"));
  EXPECT_EQ(Slice(), Slice(""));
}

// ------------------------------------------------------------------- Arena

TEST(ArenaTest, AllocationsAreDistinctAndAligned) {
  Arena arena(1024);
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  char* aligned = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(aligned) % 64, 0u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(1024);
  char* big = arena.Allocate(10000);
  ASSERT_NE(big, nullptr);
  big[9999] = 'x';  // must be writable to the end
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaTest, CopyBytesRoundTrips) {
  Arena arena;
  const char* src = "positional map";
  char* copy = arena.CopyBytes(src, 14);
  EXPECT_EQ(std::string(copy, 14), "positional map");
}

TEST(ArenaTest, ResetReclaimsEverything) {
  Arena arena(256);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

// ------------------------------------------------------------------ Random

TEST(RandomTest, DeterministicBySeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Random c(8);
  bool differs = false;
  Random a2(7);
  for (int i = 0; i < 10; ++i) {
    if (a2.NextUint64() != c.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextStringHasRequestedLengthAndAlphabet) {
  Random rng(1);
  std::string s = rng.NextString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

/// Property sweep: Zipf output respects the domain and skews toward
/// small ranks as theta grows.
class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, SkewGrowsWithTheta) {
  double theta = GetParam();
  ZipfGenerator zipf(1000, theta, 99);
  uint64_t head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) ++head;
  }
  double head_fraction = static_cast<double>(head) / kDraws;
  if (theta == 0.0) {
    EXPECT_NEAR(head_fraction, 0.01, 0.01);  // uniform
  } else if (theta >= 1.0) {
    EXPECT_GT(head_fraction, 0.3);  // strongly skewed
  } else {
    EXPECT_GT(head_fraction, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2));

// ----------------------------------------------------------------- strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinIsInverseOfSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,,yz");
  EXPECT_EQ(SplitString(JoinStrings(parts, ","), ','), parts);
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(TrimView("  hi \t\n"), "hi");
  EXPECT_EQ(TrimView("   "), "");
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "wher"));
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StringUtilTest, HumanReadableFormats) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MiB");
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(1500), "1.5 us");
  EXPECT_EQ(FormatNanos(2500000), "2.5 ms");
  EXPECT_EQ(FormatNanos(1200000000), "1.20 s");
}

// -------------------------------------------------------------------- hash

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a("a") with standard offset basis.
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abd", 3));
}

TEST(HashTest, MixAndCombineSpreadBits) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(MixHash64(i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(CombineHash64(1, 2), CombineHash64(2, 1));
}

}  // namespace
}  // namespace nodb
