// Integration tests: multi-query adaptive workflows over raw files —
// epochs with eviction under tight budgets, TPC-H-shaped queries with
// joins, update flows mid-workload, and the monitoring panel.

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"

namespace nodb {
namespace {

TEST(IntegrationTest, EpochWorkloadAdaptsAndEvicts) {
  auto dir = TempDir::Create("nodb-epochs");
  ASSERT_TRUE(dir.ok());

  SyntheticSpec spec;
  spec.num_tuples = 4000;
  spec.num_attributes = 30;
  spec.attribute_width = 8;
  std::string path = dir->FilePath("wide.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable(
                      {"wide", path, spec.MakeSchema(), CsvDialect()})
                  .ok());

  NoDbConfig config;
  config.rows_per_block = 256;
  // Tight budgets: an epoch's working set fits, the whole history does
  // not, so old epochs must be evicted.
  config.positional_map_budget = 150 * 1024;
  config.cache_budget = 300 * 1024;
  NoDbEngine engine(catalog, config);

  // 3 epochs, each querying a disjoint 5-attribute window.
  for (int epoch = 0; epoch < 3; ++epoch) {
    int base = epoch * 10;
    for (int q = 0; q < 4; ++q) {
      std::string a = "attr" + std::to_string(base + q);
      std::string b = "attr" + std::to_string(base + q + 1);
      auto result = engine.Execute("SELECT " + a + ", " + b +
                                   " FROM wide WHERE " + a +
                                   " < 00500000 LIMIT 10000");
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_GT(result->result.num_rows(), 0u);
    }
  }

  const RawTableState* state = engine.table_state("wide");
  ASSERT_NE(state, nullptr);
  // Budgets were respected throughout...
  EXPECT_LE(state->map().bytes_used(), config.positional_map_budget);
  EXPECT_LE(state->cache().bytes_used(), config.cache_budget);
  // ...and adaptation actually evicted older-epoch state.
  EXPECT_GT(state->map().evictions() + state->cache().evictions(), 0u);
  // The most recent epoch's predicate column is still indexed (LRU
  // kept it hot; with pushdown, chunks record the phase-1 columns).
  EXPECT_GT(state->map().CoverageFraction(23), 0.5);

  // The monitoring panel renders without issues and mentions the table.
  std::string panel = MonitorPanel::RenderTableState(*state);
  EXPECT_NE(panel.find("wide"), std::string::npos);
  EXPECT_NE(panel.find("positional map"), std::string::npos);
}

TEST(IntegrationTest, TpchStyleQueriesAcrossEngines) {
  auto dir = TempDir::Create("nodb-tpch");
  ASSERT_TRUE(dir.ok());
  TpchSpec spec;
  spec.scale_factor = 0.002;
  std::string li = dir->FilePath("lineitem.tbl");
  std::string ord = dir->FilePath("orders.tbl");
  ASSERT_TRUE(GenerateTpchLineitem(li, spec).ok());
  ASSERT_TRUE(GenerateTpchOrders(ord, spec).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable({"lineitem", li, TpchLineitemSchema(),
                                  CsvDialect::Pipe()})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterTable({"orders", ord, TpchOrdersSchema(),
                                  CsvDialect::Pipe()})
                  .ok());

  NoDbEngine nodb(catalog, NoDbConfig());
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);

  // Q1-shaped: aggregates by flag/status over a shipdate range.
  const char* q1 =
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
      "SUM(l_extendedprice) AS sum_base, AVG(l_discount) AS avg_disc, "
      "COUNT(*) AS n FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-08-01' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus";
  // Q6-shaped: revenue filter.
  const char* q6 =
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";
  // Join-shaped: lineitems of high-priority orders.
  const char* qj =
      "SELECT COUNT(*) AS n FROM lineitem l JOIN orders o "
      "ON l.l_orderkey = o.o_orderkey "
      "WHERE o.o_orderpriority = '1-URGENT'";

  for (const char* sql : {q1, q6, qj}) {
    SCOPED_TRACE(sql);
    auto expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto got = nodb.Execute(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->result.CanonicalRows(),
              expected->result.CanonicalRows());
  }

  // Q1 touches a non-trivial row set.
  auto q1_result = nodb.Execute(q1);
  ASSERT_TRUE(q1_result.ok());
  EXPECT_GE(q1_result->result.num_rows(), 3u);
}

TEST(IntegrationTest, UpdateWorkflowMidQueries) {
  auto dir = TempDir::Create("nodb-updates");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->FilePath("log.csv");
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += std::to_string(i) + "," + std::to_string(i % 10) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  Catalog catalog;
  auto schema = Schema::Make({{"seq", DataType::kInt64},
                              {"bucket", DataType::kInt64}});
  ASSERT_TRUE(
      catalog.RegisterTable({"log", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.rows_per_block = 64;
  NoDbEngine engine(catalog, config);

  auto r1 = engine.Execute("SELECT MAX(seq) AS m FROM log");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->result.Row(0)[0], Value::Int64(199));

  // Appends between queries are picked up; structures survive.
  for (int round = 0; round < 3; ++round) {
    auto app = OpenAppendableFile(path);
    ASSERT_TRUE(app.ok());
    std::string tail;
    for (int i = 0; i < 50; ++i) {
      int seq = 200 + round * 50 + i;
      tail += std::to_string(seq) + "," + std::to_string(seq % 10) + "\n";
    }
    ASSERT_TRUE((*app)->Append(tail).ok());
    ASSERT_TRUE((*app)->Close().ok());

    auto refresh = engine.RefreshTable("log");
    ASSERT_TRUE(refresh.ok());
    EXPECT_EQ(*refresh, FileChange::kAppended);
    auto result = engine.Execute(
        "SELECT COUNT(*) AS n, MAX(seq) AS m FROM log");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result.Row(0)[0],
              Value::Int64(200 + (round + 1) * 50));
    EXPECT_EQ(result->result.Row(0)[1],
              Value::Int64(199 + (round + 1) * 50));
  }

  // A grouped query after all appends agrees with a fresh reference.
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  const char* sql =
      "SELECT bucket, COUNT(*) AS n FROM log GROUP BY bucket "
      "ORDER BY bucket";
  auto expected = reference.Execute(sql);
  auto got = engine.Execute(sql);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_EQ(got->result.CanonicalRows(), expected->result.CanonicalRows());
}

TEST(IntegrationTest, BreakdownPanelRendersAllCategories) {
  auto dir = TempDir::Create("nodb-panel");
  ASSERT_TRUE(dir.ok());
  SyntheticSpec spec;
  spec.num_tuples = 500;
  spec.num_attributes = 6;
  std::string path = dir->FilePath("p.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable(
                      {"p", path, spec.MakeSchema(), CsvDialect()})
                  .ok());
  NoDbEngine engine(catalog, NoDbConfig());
  auto outcome = engine.Execute("SELECT attr1 FROM p WHERE attr0 > 0");
  ASSERT_TRUE(outcome.ok());
  std::string line = MonitorPanel::RenderBreakdown("q1", outcome->metrics);
  EXPECT_NE(line.find("tokenize"), std::string::npos);
  EXPECT_NE(line.find("total"), std::string::npos);
  std::string csv = MonitorPanel::BreakdownCsvRow("q1", outcome->metrics);
  // Header and row have the same number of columns.
  auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(MonitorPanel::BreakdownCsvHeader()),
            count_commas(csv));
}

}  // namespace
}  // namespace nodb
