// Unit tests for the type system: DataType, dates, Value, Schema,
// ColumnVector and RecordBatch.

#include <gtest/gtest.h>

#include "types/column_vector.h"
#include "types/data_type.h"
#include "types/date_util.h"
#include "types/record_batch.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/random.h"

namespace nodb {
namespace {

TEST(DataTypeTest, NamesRoundTrip) {
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "INT");
  EXPECT_EQ(*DataTypeFromString("int"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("BIGINT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("Double"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromString("decimal"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromString("VARCHAR"), DataType::kString);
  EXPECT_EQ(*DataTypeFromString("date"), DataType::kDate);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDate));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

// -------------------------------------------------------------------- date

TEST(DateUtilTest, KnownDates) {
  EXPECT_EQ(CivilToDays(1970, 1, 1), 0);
  EXPECT_EQ(CivilToDays(1970, 1, 2), 1);
  EXPECT_EQ(CivilToDays(1969, 12, 31), -1);
  EXPECT_EQ(CivilToDays(2000, 3, 1), 11017);
  EXPECT_EQ(*ParseDate("1992-01-01"), CivilToDays(1992, 1, 1));
  EXPECT_EQ(FormatDate(0), "1970-01-01");
}

TEST(DateUtilTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDate("1992/01/01").ok());
  EXPECT_FALSE(ParseDate("1992-1-1").ok());
  EXPECT_FALSE(ParseDate("199x-01-01").ok());
  EXPECT_FALSE(ParseDate("1992-13-01").ok());
  EXPECT_FALSE(ParseDate("1992-00-10").ok());
  EXPECT_FALSE(ParseDate("1992-01-32").ok());
  EXPECT_FALSE(ParseDate("").ok());
}

/// Property: civil <-> days round-trips over four centuries (covers
/// all leap-year rules).
TEST(DateUtilTest, RoundTripProperty) {
  Random rng(17);
  for (int i = 0; i < 2000; ++i) {
    int64_t days = rng.UniformRange(CivilToDays(1900, 1, 1),
                                    CivilToDays(2299, 12, 31));
    int y, m, d;
    DaysToCivil(days, &y, &m, &d);
    EXPECT_EQ(CivilToDays(y, m, d), days);
    EXPECT_EQ(*ParseDate(FormatDate(days)), days);
  }
}

TEST(DateUtilTest, LeapYearBoundaries) {
  EXPECT_EQ(FormatDate(CivilToDays(2000, 2, 29)), "2000-02-29");
  EXPECT_EQ(CivilToDays(2000, 3, 1) - CivilToDays(2000, 2, 28), 2);
  // 1900 was not a leap year.
  EXPECT_EQ(CivilToDays(1900, 3, 1) - CivilToDays(1900, 2, 28), 1);
}

// ------------------------------------------------------------------- Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_EQ(Value::Double(1.5).dbl(), 1.5);
  EXPECT_EQ(Value::String("abc").str(), "abc");
  EXPECT_EQ(Value::Date(10).date_days(), 10);
  EXPECT_TRUE(Value::Date(10).is_date());
  EXPECT_FALSE(Value::Int64(10).is_date());  // variant index disambiguates
}

TEST(ValueTest, AsDoubleOnNumerics) {
  EXPECT_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Date(7).AsDouble(), 7.0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("x").ToString(), "x");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
}

TEST(ValueTest, EqualityDistinguishesIntFromDate) {
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_NE(Value::Int64(5), Value::Date(5));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
}

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, LookupAndProjection) {
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kString},
                              {"c", DataType::kDouble}});
  EXPECT_EQ(schema->num_fields(), 3u);
  EXPECT_EQ(*schema->FieldIndex("b"), 1u);
  EXPECT_FALSE(schema->FieldIndex("z").ok());
  EXPECT_TRUE(schema->HasField("c"));
  auto proj = schema->Project({2, 0});
  ASSERT_EQ(proj->num_fields(), 2u);
  EXPECT_EQ(proj->field(0).name, "c");
  EXPECT_EQ(proj->field(1).name, "a");
  EXPECT_EQ(schema->ToString(), "a:INT, b:STRING, c:DOUBLE");
}

// ------------------------------------------------------------ ColumnVector

TEST(ColumnVectorTest, IntAppendAndGet) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(-3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetInt64(0), 1);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetInt64(2), -3);
  EXPECT_EQ(col.GetValue(2), Value::Int64(-3));
  EXPECT_EQ(col.GetValue(1), Value::Null());
}

TEST(ColumnVectorTest, StringStorageIsPacked) {
  ColumnVector col(DataType::kString);
  col.AppendString("alpha");
  col.AppendString("");
  col.AppendNull();
  col.AppendString("omega");
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.GetString(0), "alpha");
  EXPECT_EQ(col.GetString(1), "");
  EXPECT_TRUE(col.IsNull(2));
  EXPECT_EQ(col.GetString(3), "omega");
}

TEST(ColumnVectorTest, DateAndNumericViews) {
  ColumnVector col(DataType::kDate);
  col.AppendDate(100);
  EXPECT_EQ(col.GetDate(0), 100);
  EXPECT_EQ(col.GetNumeric(0), 100.0);
  EXPECT_EQ(col.GetValue(0), Value::Date(100));
}

TEST(ColumnVectorTest, AppendFromCopiesAcrossVectors) {
  ColumnVector src(DataType::kString);
  src.AppendString("keep");
  src.AppendNull();
  ColumnVector dst(DataType::kString);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.GetString(0), "keep");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnVectorTest, AppendValueDispatchesByType) {
  ColumnVector col(DataType::kDouble);
  col.AppendValue(Value::Double(2.5));
  col.AppendValue(Value::Int64(3));  // coerced
  col.AppendValue(Value::Null());
  EXPECT_EQ(col.GetDouble(0), 2.5);
  EXPECT_EQ(col.GetDouble(1), 3.0);
  EXPECT_TRUE(col.IsNull(2));
}

TEST(ColumnVectorTest, ClearAndMemoryUsage) {
  ColumnVector col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("some payload");
  EXPECT_GT(col.MemoryUsage(), 1000u);
  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  col.AppendString("fresh");
  EXPECT_EQ(col.GetString(0), "fresh");
}

// ------------------------------------------------------------- RecordBatch

TEST(RecordBatchTest, AppendRowAndReadBack) {
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"name", DataType::kString}});
  RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(1), Value::String("ada")});
  batch.AppendRow({Value::Null(), Value::String("bob")});
  ASSERT_EQ(batch.num_rows(), 2u);
  ASSERT_EQ(batch.num_columns(), 2u);
  auto row = batch.Row(1);
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1], Value::String("bob"));
}

TEST(RecordBatchTest, ConstructFromColumns) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  auto col = std::make_shared<ColumnVector>(DataType::kInt64);
  col->AppendInt64(9);
  RecordBatch batch(schema, {col}, 1);
  EXPECT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.column(0).GetInt64(0), 9);
}

}  // namespace
}  // namespace nodb
