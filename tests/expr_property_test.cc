// Property test: the columnar expression evaluator agrees with an
// independent, obviously-correct row-at-a-time reference interpreter
// on randomly generated expression trees over randomly generated
// batches (including NULLs and all type combinations the binder
// permits).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "exec/expr.h"
#include "util/random.h"

namespace nodb {
namespace {

// ----------------------------------------------------------- reference

/// Row-wise reference semantics. NULL is Value::Null(); booleans are
/// Value::Int64(0/1).
Value EvalRef(const Expr& e, const std::vector<Value>& row) {
  if (const auto* col = dynamic_cast<const ColumnRefExpr*>(&e)) {
    return row[col->index()];
  }
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&e)) {
    return lit->value();
  }
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&e)) {
    Value l = EvalRef(*cmp->left(), row);
    Value r = EvalRef(*cmp->right(), row);
    if (l.is_null() || r.is_null()) return Value::Null();
    int c;
    if (l.is_string()) {
      c = l.str().compare(r.str());
      c = c < 0 ? -1 : (c > 0 ? 1 : 0);
    } else if (!l.is_double() && !r.is_double()) {
      // Integer-exact comparison (INT/DATE).
      int64_t a = l.is_date() ? l.date_days() : l.int64();
      int64_t b = r.is_date() ? r.date_days() : r.int64();
      c = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      double a = l.AsDouble();
      double b = r.AsDouble();
      c = a < b ? -1 : (a > b ? 1 : 0);
    }
    bool pass = false;
    switch (cmp->op()) {
      case CompareOp::kEq:
        pass = c == 0;
        break;
      case CompareOp::kNe:
        pass = c != 0;
        break;
      case CompareOp::kLt:
        pass = c < 0;
        break;
      case CompareOp::kLe:
        pass = c <= 0;
        break;
      case CompareOp::kGt:
        pass = c > 0;
        break;
      case CompareOp::kGe:
        pass = c >= 0;
        break;
    }
    return Value::Int64(pass ? 1 : 0);
  }
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&e)) {
    Value l = EvalRef(*logical->left(), row);
    if (logical->op() == LogicalOp::kNot) {
      if (l.is_null()) return Value::Null();
      return Value::Int64(l.int64() != 0 ? 0 : 1);
    }
    Value r = EvalRef(*logical->right(), row);
    int a = l.is_null() ? -1 : (l.int64() != 0 ? 1 : 0);
    int b = r.is_null() ? -1 : (r.int64() != 0 ? 1 : 0);
    int v;
    if (logical->op() == LogicalOp::kAnd) {
      v = (a == 0 || b == 0) ? 0 : ((a == -1 || b == -1) ? -1 : 1);
    } else {
      v = (a == 1 || b == 1) ? 1 : ((a == -1 || b == -1) ? -1 : 0);
    }
    return v == -1 ? Value::Null() : Value::Int64(v);
  }
  if (const auto* arith = dynamic_cast<const ArithExpr*>(&e)) {
    Value l = EvalRef(*arith->left(), row);
    Value r = EvalRef(*arith->right(), row);
    if (l.is_null() || r.is_null()) return Value::Null();
    bool int_exact = !l.is_double() && !r.is_double();
    ArithOp op = arith->op();
    if (int_exact && op != ArithOp::kDiv) {
      int64_t a = l.is_date() ? l.date_days() : l.int64();
      int64_t b = r.is_date() ? r.date_days() : r.int64();
      switch (op) {
        case ArithOp::kAdd:
          return Value::Int64(a + b);
        case ArithOp::kSub:
          return Value::Int64(a - b);
        case ArithOp::kMul:
          return Value::Int64(a * b);
        case ArithOp::kDiv:
          break;
      }
    }
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Double(a + b);
      case ArithOp::kSub:
        return Value::Double(a - b);
      case ArithOp::kMul:
        return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null();
        return Value::Double(a / b);
    }
    return Value::Null();
  }
  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(&e)) {
    // IsNullExpr does not expose its child; re-derive via ToString is
    // fragile, so the generator wraps children we track externally.
    // (Handled by the generator storing children; see RefIsNull.)
    (void)isnull;
    ADD_FAILURE() << "IsNull handled by generator wrapper";
    return Value::Null();
  }
  ADD_FAILURE() << "unsupported node in reference: " << e.ToString();
  return Value::Null();
}

// ----------------------------------------------------------- generator

/// Builds random well-typed expressions and mirrors them for the
/// reference interpreter (same shared nodes, so no divergence).
class ExprGenerator {
 public:
  ExprGenerator(std::shared_ptr<Schema> schema, uint64_t seed)
      : schema_(std::move(schema)), rng_(seed) {}

  /// A random boolean (kInt64) expression up to `depth` levels deep.
  ExprPtr Boolean(int depth) {
    if (depth <= 0 || rng_.Bernoulli(0.3)) return Comparison();
    switch (rng_.Uniform(3)) {
      case 0:
        return std::make_shared<LogicalExpr>(
            LogicalOp::kAnd, Boolean(depth - 1), Boolean(depth - 1));
      case 1:
        return std::make_shared<LogicalExpr>(
            LogicalOp::kOr, Boolean(depth - 1), Boolean(depth - 1));
      default:
        return std::make_shared<LogicalExpr>(LogicalOp::kNot,
                                             Boolean(depth - 1), nullptr);
    }
  }

 private:
  ExprPtr ColumnOfType(bool numeric) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < schema_->num_fields(); ++i) {
      bool is_numeric = schema_->field(i).type != DataType::kString;
      if (is_numeric == numeric) candidates.push_back(i);
    }
    size_t i = candidates[rng_.Uniform(candidates.size())];
    return std::make_shared<ColumnRefExpr>(i, schema_->field(i).name,
                                           schema_->field(i).type);
  }

  ExprPtr NumericLiteral() {
    if (rng_.Bernoulli(0.5)) {
      return std::make_shared<LiteralExpr>(
          Value::Int64(rng_.UniformRange(-50, 50)), DataType::kInt64);
    }
    return std::make_shared<LiteralExpr>(
        Value::Double(static_cast<double>(rng_.UniformRange(-500, 500)) /
                      10.0),
        DataType::kDouble);
  }

  ExprPtr NumericTerm(int depth) {
    if (depth <= 0 || rng_.Bernoulli(0.4)) {
      return rng_.Bernoulli(0.6) ? ColumnOfType(true) : NumericLiteral();
    }
    ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul};
    // Division is excluded: x/0 yields NULL in the engine and the
    // reference would need the same special case — tested separately.
    return std::make_shared<ArithExpr>(ops[rng_.Uniform(3)],
                                       NumericTerm(depth - 1),
                                       NumericTerm(depth - 1));
  }

  ExprPtr Comparison() {
    CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    CompareOp op = ops[rng_.Uniform(6)];
    if (rng_.Bernoulli(0.25)) {
      // String comparison.
      auto lit = std::make_shared<LiteralExpr>(
          Value::String(std::string(1, static_cast<char>(
                                           'a' + rng_.Uniform(6)))),
          DataType::kString);
      return std::make_shared<CompareExpr>(op, ColumnOfType(false), lit);
    }
    return std::make_shared<CompareExpr>(op, NumericTerm(2),
                                         NumericTerm(2));
  }

  std::shared_ptr<Schema> schema_;
  Random rng_;
};

// --------------------------------------------------------------- the test

class ExprPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprPropertySweep, ColumnarMatchesReference) {
  uint64_t seed = GetParam();
  Random rng(seed);

  auto schema = Schema::Make({{"i1", DataType::kInt64},
                              {"i2", DataType::kInt64},
                              {"d1", DataType::kDouble},
                              {"s1", DataType::kString},
                              {"t1", DataType::kDate}});
  // Random batch with NULLs.
  RecordBatch batch(schema);
  size_t rows = 50 + rng.Uniform(100);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Int64(rng.UniformRange(-40, 40)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Int64(rng.UniformRange(-5, 5)));
    row.push_back(
        rng.Bernoulli(0.1)
            ? Value::Null()
            : Value::Double(
                  static_cast<double>(rng.UniformRange(-400, 400)) / 8.0));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::String(std::string(
                            1 + rng.Uniform(3),
                            static_cast<char>('a' + rng.Uniform(6)))));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Date(rng.UniformRange(8000, 9000)));
    batch.AppendRow(row);
  }

  ExprGenerator generator(schema, seed * 31 + 7);
  for (int iter = 0; iter < 40; ++iter) {
    ExprPtr expr = generator.Boolean(3);
    ASSERT_TRUE(expr->OutputType(*schema).ok()) << expr->ToString();
    auto col = expr->Evaluate(batch);
    ASSERT_TRUE(col.ok()) << expr->ToString();
    ASSERT_EQ((*col)->size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      Value expected = EvalRef(*expr, batch.Row(r));
      Value got = (*col)->GetValue(r);
      ASSERT_EQ(got, expected)
          << "seed " << seed << " iter " << iter << " row " << r << ": "
          << expr->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace nodb
