// Tests for the bulk CSV loader (the conventional engine's COPY phase).

#include <gtest/gtest.h>

#include "engines/csv_loader.h"
#include "io/file.h"
#include "io/temp_dir.h"

namespace nodb {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-loader");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }
  std::unique_ptr<TempDir> dir_;
};

TEST_F(CsvLoaderTest, LoadsAllTypesAndNulls) {
  std::string path = dir_->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path,
                                "1,1.5,ada,1994-01-02\n"
                                ",,,\n"
                                "-3,2e2,bob,1999-12-31\n")
                  .ok());
  auto schema = Schema::Make({{"i", DataType::kInt64},
                              {"d", DataType::kDouble},
                              {"s", DataType::kString},
                              {"t", DataType::kDate}});
  LoadStats stats;
  auto table = LoadCsv(path, schema, CsvDialect(), &stats);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ((*table)->num_rows(), 3u);
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_GT(stats.elapsed_ns, 0);
  EXPECT_EQ((*table)->column(0).GetInt64(0), 1);
  EXPECT_TRUE((*table)->column(0).IsNull(1));
  EXPECT_TRUE((*table)->column(2).IsNull(1));
  EXPECT_EQ((*table)->column(0).GetInt64(2), -3);
  EXPECT_DOUBLE_EQ((*table)->column(1).GetDouble(2), 200.0);
  EXPECT_EQ((*table)->column(2).GetString(2), "bob");
  EXPECT_EQ((*table)->column(3).GetValue(2).ToString(), "1999-12-31");
}

/// RandomAccessFile whose first `failures` reads fail with IOError and
/// later reads succeed against the backing file — the shape of a
/// transient medium error.
class FlakyFile : public RandomAccessFile {
 public:
  FlakyFile(std::shared_ptr<RandomAccessFile> base, int failures)
      : base_(std::move(base)), failures_left_(failures) {}

  Status Read(uint64_t offset, size_t length, char* scratch,
              Slice* out) const override {
    if (failures_left_ > 0) {
      --failures_left_;
      return Status::IOError("injected transient read failure");
    }
    return base_->Read(offset, length, scratch, out);
  }
  Result<uint64_t> Size() const override { return base_->Size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::shared_ptr<RandomAccessFile> base_;
  mutable int failures_left_;
};

// Regression: the header-skip used to swallow FindNewline's status, so
// a transient read error at offset 0 left header_end unset and the
// loader parsed the *header line* as data. The error must surface.
TEST_F(CsvLoaderTest, HeaderReadFailureSurfacesInsteadOfEatingHeader) {
  std::string path = dir_->FilePath("flaky.csv");
  ASSERT_TRUE(WriteStringToFile(path, "a,b\n1,2\n3,4\n").ok());
  auto schema =
      Schema::Make({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  CsvDialect dialect;
  dialect.has_header = true;

  auto base = OpenRandomAccessFile(path);
  ASSERT_TRUE(base.ok());
  auto flaky = std::make_shared<FlakyFile>(
      std::shared_ptr<RandomAccessFile>(std::move(*base)), 1);
  auto table = LoadCsv(flaky, path, schema, dialect);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsIOError()) << table.status().ToString();

  // Control: with no injected failure the same file loads two rows and
  // the header line is not among them.
  auto ok_base = OpenRandomAccessFile(path);
  ASSERT_TRUE(ok_base.ok());
  auto ok_table = LoadCsv(
      std::shared_ptr<RandomAccessFile>(std::move(*ok_base)), path,
      schema, dialect);
  ASSERT_TRUE(ok_table.ok()) << ok_table.status().ToString();
  EXPECT_EQ((*ok_table)->num_rows(), 2u);
  EXPECT_EQ((*ok_table)->column(0).GetInt64(0), 1);
}

TEST_F(CsvLoaderTest, HeaderSkippedAndPipeDialect) {
  std::string path = dir_->FilePath("h.csv");
  ASSERT_TRUE(WriteStringToFile(path, "a|b\n1|2\n3|4\n").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  CsvDialect dialect = CsvDialect::Pipe();
  dialect.has_header = true;
  auto table = LoadCsv(path, schema, dialect);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->column(1).GetInt64(1), 4);
}

TEST_F(CsvLoaderTest, ErrorsCarryRowAndColumn) {
  std::string path = dir_->FilePath("bad.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,oops\n").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  auto table = LoadCsv(path, schema, CsvDialect());
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
  EXPECT_NE(table.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(table.status().message().find("column b"), std::string::npos);
}

TEST_F(CsvLoaderTest, ShortRowRejected) {
  std::string path = dir_->FilePath("short.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2,3\n4,5\n").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64},
                              {"c", DataType::kInt64}});
  auto table = LoadCsv(path, schema, CsvDialect());
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
}

TEST_F(CsvLoaderTest, EmptyFileLoadsZeroRows) {
  std::string path = dir_->FilePath("empty.csv");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64}});
  auto table = LoadCsv(path, schema, CsvDialect());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 0u);
}

TEST_F(CsvLoaderTest, QuotedFieldsDecoded) {
  std::string path = dir_->FilePath("q.csv");
  ASSERT_TRUE(
      WriteStringToFile(path, "1,\"a,b\"\n2,\"say \"\"hi\"\"\"\n").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"s", DataType::kString}});
  auto table = LoadCsv(path, schema, CsvDialect::QuotedCsv());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->column(1).GetString(0), "a,b");
  EXPECT_EQ((*table)->column(1).GetString(1), "say \"hi\"");
}

TEST_F(CsvLoaderTest, NoTrailingNewline) {
  std::string path = dir_->FilePath("nonl.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4").ok());
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  auto table = LoadCsv(path, schema, CsvDialect());
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->column(1).GetInt64(1), 4);
}

}  // namespace
}  // namespace nodb
