// Tests for the server front end: wire-protocol round trips, admission
// control (caps, queue timeout, drain, slot release on cancellation),
// byte-identical remote execution vs in-process, multi-client stress,
// malformed-frame robustness, the HTTP dialect, graceful drain writing
// snapshots, and per-tenant partitioning of the storage tiers.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "obs/tenant.h"
#include "raw/stats_collector.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "store/shadow_store.h"

namespace nodb {
namespace server {
namespace {

/// ---- Wire round trips --------------------------------------------------

TEST(WireTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutString("");

  WireReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0xbeef);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, TruncatedReadsFailWithParseError) {
  WireWriter w;
  w.PutU32(7);
  {
    WireReader r(w.data());
    EXPECT_FALSE(r.GetU64().ok());
    EXPECT_TRUE(r.GetU64().status().IsParseError());
  }
  {
    // String length prefix promising more bytes than the payload has.
    WireWriter s;
    s.PutU32(100);
    WireReader r(s.data());
    auto got = r.GetString();
    EXPECT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsParseError());
  }
}

TEST(WireTest, SchemaRoundTrip) {
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"amount", DataType::kDouble},
                              {"day", DataType::kDate}});
  WireWriter w;
  EncodeSchema(*schema, &w);
  WireReader r(w.data());
  auto decoded = DecodeSchema(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(**decoded == *schema);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, BatchRoundTripWithNulls) {
  auto schema = Schema::Make({{"i", DataType::kInt64},
                              {"d", DataType::kDouble},
                              {"s", DataType::kString},
                              {"t", DataType::kDate}});
  RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(1), Value::Double(1.5),
                   Value::String("alpha"), Value::Date(8400)});
  batch.AppendRow({Value::Null(), Value::Null(), Value::Null(),
                   Value::Null()});
  batch.AppendRow({Value::Int64(-7), Value::Double(-0.25),
                   Value::String(""), Value::Date(0)});

  WireWriter w;
  EncodeBatchRows(batch, 0, batch.num_rows(), &w);
  WireReader r(w.data());
  RecordBatch decoded(schema);
  auto rows = DecodeBatchInto(&r, &decoded);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, 3u);
  EXPECT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(decoded.num_rows(), 3u);
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    EXPECT_EQ(batch.Row(i), decoded.Row(i)) << "row " << i;
  }
}

TEST(WireTest, QueryMetricsRoundTrip) {
  QueryMetrics m;
  m.total_ns = 123456;
  m.parse_ns = 11;
  m.plan_ns = 22;
  m.drain_ns = 33;
  m.scan.io_ns = 44;
  m.scan.rows_scanned = 1000;
  m.scan.rows_from_store = 600;
  m.scan.pushdown_rows_pruned = 17;
  m.scan.scans_using_recovered_store = 2;
  WireWriter w;
  EncodeQueryMetrics(m, &w);
  WireReader r(w.data());
  auto decoded = DecodeQueryMetrics(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(decoded->total_ns, m.total_ns);
  EXPECT_EQ(decoded->parse_ns, m.parse_ns);
  EXPECT_EQ(decoded->plan_ns, m.plan_ns);
  EXPECT_EQ(decoded->drain_ns, m.drain_ns);
  EXPECT_EQ(decoded->scan.io_ns, m.scan.io_ns);
  EXPECT_EQ(decoded->scan.rows_scanned, m.scan.rows_scanned);
  EXPECT_EQ(decoded->scan.rows_from_store, m.scan.rows_from_store);
  EXPECT_EQ(decoded->scan.pushdown_rows_pruned,
            m.scan.pushdown_rows_pruned);
  EXPECT_EQ(decoded->scan.scans_using_recovered_store,
            m.scan.scans_using_recovered_store);
}

/// ---- Admission control -------------------------------------------------

NoDbConfig TightAdmission() {
  NoDbConfig config;
  config.server_max_in_flight = 2;
  config.server_tenant_max_concurrent = 1;
  config.server_queue_timeout_ms = 50;
  return config;
}

TEST(AdmissionTest, TenantCapAndRelease) {
  AdmissionController admission(TightAdmission());
  uint32_t alice = obs::TenantIdFor("alice-cap");
  uint32_t bob = obs::TenantIdFor("bob-cap");

  auto first = admission.Admit(alice);
  ASSERT_TRUE(first.ok());
  // Same tenant is at its cap and times out; another tenant fits.
  auto second = admission.Admit(alice);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
  auto other = admission.Admit(bob);
  EXPECT_TRUE(other.ok());

  first->Release();
  auto after_release = admission.Admit(alice);
  EXPECT_TRUE(after_release.ok());
}

TEST(AdmissionTest, GlobalCapTimesOut) {
  AdmissionController admission(TightAdmission());
  auto a = admission.Admit(obs::TenantIdFor("g1"));
  auto b = admission.Admit(obs::TenantIdFor("g2"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = admission.Admit(obs::TenantIdFor("g3"));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsUnavailable());

  ServerStats stats;
  admission.FillStats(&stats);
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.queue_timeouts_total, 1u);
}

TEST(AdmissionTest, MemoryBudgetBoundsConcurrency) {
  NoDbConfig config;
  config.server_max_in_flight = 8;
  config.server_tenant_max_concurrent = 8;
  config.server_tenant_memory_budget = 32u << 20;
  config.server_query_memory_reserve = 16u << 20;  // 2 queries fit
  config.server_queue_timeout_ms = 50;
  AdmissionController admission(config);
  uint32_t tenant = obs::TenantIdFor("memory-bound");
  auto a = admission.Admit(tenant);
  auto b = admission.Admit(tenant);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = admission.Admit(tenant);
  EXPECT_FALSE(c.ok());
}

TEST(AdmissionTest, DrainFailsWaitersAndFutureAdmits) {
  NoDbConfig config = TightAdmission();
  config.server_queue_timeout_ms = 10000;  // waiter would block long
  AdmissionController admission(config);
  uint32_t tenant = obs::TenantIdFor("drain-tenant");
  auto held = admission.Admit(tenant);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> waiter_done{false};
  Status waiter_status = Status::OK();
  std::thread waiter([&] {
    auto blocked = admission.Admit(tenant);
    waiter_status = blocked.status();
    waiter_done.store(true);
  });
  // Give the waiter time to enqueue, then drain: it must fail fast,
  // not after 10 s.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  admission.BeginDrain();
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  EXPECT_TRUE(waiter_status.IsUnavailable());

  auto after = admission.Admit(tenant);
  EXPECT_FALSE(after.ok());
}

/// ---- Server fixture ----------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-server");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = dir_->FilePath("sales.csv");
    std::string content;
    const char* regions[] = {"north", "south", "east", "west"};
    for (int i = 0; i < 2000; ++i) {
      content += std::to_string(i);
      content += ",";
      content += regions[i % 4];
      content += ",";
      content += std::to_string((i * 7) % 100);
      content += ".5,";
      content += (i % 2 == 0) ? "1994-01-10" : "1995-03-20";
      content += "\n";
    }
    ASSERT_TRUE(WriteStringToFile(path_, content).ok());
    schema_ = Schema::Make({{"id", DataType::kInt64},
                            {"region", DataType::kString},
                            {"amount", DataType::kDouble},
                            {"day", DataType::kDate}});
    ASSERT_TRUE(
        catalog_.RegisterTable({"sales", path_, schema_, CsvDialect()})
            .ok());
  }

  NoDbConfig ServerConfig() {
    NoDbConfig config;
    config.rows_per_block = 256;
    config.server_result_batch_rows = 300;  // force multi-frame results
    return config;
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
  Catalog catalog_;
};

TEST_F(ServerTest, RemoteResultsAreByteIdenticalToInProcess) {
  NoDbConfig config = ServerConfig();
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM sales",
      "SELECT region, COUNT(*) AS n, AVG(amount) AS avg_amount FROM sales "
      "WHERE day < DATE '1995-01-01' GROUP BY region ORDER BY region",
      "SELECT id, amount FROM sales WHERE id < 10 ORDER BY id",
      "SELECT * FROM sales WHERE region = 'north' AND amount > 50.0",
  };

  auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "tenant-a", "identity-test");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_EQ(conn->server_name(), "PostgresRaw");

  for (const std::string& sql : sqls) {
    auto remote = conn->Execute(sql);
    ASSERT_TRUE(remote.ok()) << sql << ": " << remote.status().ToString();
    auto local = engine.Execute(sql);
    ASSERT_TRUE(local.ok());
    // Byte identity, not just row-set equality: the remote shell must
    // print exactly what a local shell prints.
    EXPECT_EQ(remote->result.ToString(1u << 20),
              local->result.ToString(1u << 20))
        << sql;
    EXPECT_EQ(remote->result.CanonicalRows(), local->result.CanonicalRows());
    EXPECT_GT(remote->metrics.total_ns, 0);
    EXPECT_EQ(remote->metrics.sql, sql);
  }

  auto stats = server.Stats();
  EXPECT_EQ(stats.admitted_total, sqls.size());
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].name, "tenant-a");
  EXPECT_GT(stats.tenants[0].rows_served, 0u);

  auto metrics_text = conn->FetchMetrics(false);
  ASSERT_TRUE(metrics_text.ok());
  EXPECT_NE(metrics_text->find("server front end"), std::string::npos);
  auto metrics_prom = conn->FetchMetrics(true);
  ASSERT_TRUE(metrics_prom.ok());
  EXPECT_NE(metrics_prom->find("nodb_server_admitted_total"),
            std::string::npos);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, EightClientStressMatchesExecuteConcurrent) {
  NoDbConfig config = ServerConfig();
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::string> sqls;
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < 48; ++i) {
    switch (i % 4) {
      case 0:
        sqls.push_back("SELECT COUNT(*) FROM sales WHERE id > " +
                       std::to_string((i * 31) % 1500));
        break;
      case 1:
        sqls.push_back(std::string("SELECT region, SUM(amount) AS s FROM "
                                   "sales WHERE region = '") +
                       regions[i % 4] + "' GROUP BY region");
        break;
      case 2:
        sqls.push_back("SELECT id, region FROM sales WHERE id < " +
                       std::to_string(8 + i) + " ORDER BY id");
        break;
      default:
        sqls.push_back("SELECT AVG(amount) AS a FROM sales WHERE day > "
                       "DATE '1994-06-01'");
        break;
    }
  }

  // Reference: the same batch through the in-process concurrent path.
  NoDbEngine reference(catalog_, config);
  ConcurrentBatchOutcome expected = reference.ExecuteConcurrent(sqls, 8);
  ASSERT_EQ(expected.failures(), 0u);

  constexpr int kClients = 8;
  std::vector<std::string> remote_rendered(sqls.size());
  std::vector<Status> remote_status(sqls.size(), Status::OK());
  std::atomic<size_t> next{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = ClientConnection::Connect(
          "127.0.0.1", server.port(), "stress-tenant",
          "client-" + std::to_string(c));
      if (!conn.ok()) return;  // recorded as failed queries below
      for (size_t i = next.fetch_add(1); i < sqls.size();
           i = next.fetch_add(1)) {
        auto outcome = conn->Execute(sqls[i]);
        if (!outcome.ok()) {
          remote_status[i] = outcome.status();
          continue;
        }
        remote_rendered[i] = outcome->result.ToString(1u << 20);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < sqls.size(); ++i) {
    ASSERT_TRUE(remote_status[i].ok())
        << sqls[i] << ": " << remote_status[i].ToString();
    EXPECT_EQ(remote_rendered[i],
              expected.reports[i].result.ToString(1u << 20))
        << sqls[i];
  }
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, MalformedFramesGetErrorsAndLeakNoSlots) {
  NoDbConfig config = ServerConfig();
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  auto dial = [&]() -> int {
    auto fd = ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(WriteFully(*fd, kMagic, sizeof(kMagic)).ok());
    return *fd;
  };
  auto hello = [&](int fd) {
    WireWriter w;
    w.PutU16(kProtocolVersion);
    w.PutString("fuzz-tenant");
    w.PutString("fuzz");
    ASSERT_TRUE(WriteFrame(fd, FrameType::kHello, w.data()).ok());
    auto reply = ReadFrame(fd, 1u << 20);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kHelloOk);
  };

  {
    // Truncated QUERY payload (string length promises too much):
    // ERROR, connection survives and still executes queries.
    int fd = dial();
    hello(fd);
    WireWriter w;
    w.PutU32(1000);  // length prefix, no bytes behind it
    ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery, w.data()).ok());
    auto reply = ReadFrame(fd, 1u << 20);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, FrameType::kError);

    WireWriter q;
    q.PutString("SELECT COUNT(*) FROM sales");
    ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery, q.data()).ok());
    auto header = ReadFrame(fd, 1u << 20);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->type, FrameType::kResultHeader);
    for (;;) {
      auto frame = ReadFrame(fd, 1u << 20);
      ASSERT_TRUE(frame.ok());
      if (frame->type == FrameType::kResultDone) break;
      ASSERT_EQ(frame->type, FrameType::kResultBatch);
    }
    CloseFd(fd);
  }
  {
    // Unknown frame type: ERROR, connection survives.
    int fd = dial();
    hello(fd);
    ASSERT_TRUE(
        WriteFully(fd, "\x00\x00\x00\x00\x7f", 5).ok());  // type 127, len 0
    auto reply = ReadFrame(fd, 1u << 20);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, FrameType::kError);
    CloseFd(fd);
  }
  {
    // Oversized length prefix: ERROR (OutOfRange), then server closes.
    int fd = dial();
    hello(fd);
    WireWriter header;
    header.PutU32(0x7fffffff);
    header.PutU8(static_cast<uint8_t>(FrameType::kQuery));
    ASSERT_TRUE(WriteFully(fd, header.data().data(), 5).ok());
    auto reply = ReadFrame(fd, 1u << 20);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, FrameType::kError);
    auto eof = ReadFrame(fd, 1u << 20);
    EXPECT_FALSE(eof.ok());
    CloseFd(fd);
  }
  {
    // Garbage that is neither the magic nor HTTP: one 400, then close.
    auto fd = ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFully(*fd, "garbage\r\n\r\n", 11).ok());
    char buf[256];
    Status drained = ReadFully(*fd, buf, 12);  // "HTTP/1.0 400"
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(std::string(buf, 12), "HTTP/1.0 400");
    CloseFd(*fd);
  }

  // No admission slot leaked by any of the above, and the server still
  // serves a healthy client end to end.
  auto stats = server.Stats();
  EXPECT_EQ(stats.in_flight, 0u);
  auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "after-fuzz", "sanity");
  ASSERT_TRUE(conn.ok());
  auto outcome = conn->Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, AdmissionRejectionOverTheWire) {
  NoDbConfig config = ServerConfig();
  config.server_max_in_flight = 1;
  config.server_queue_timeout_ms = 50;
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the only slot directly, deterministically.
  auto held = server.admission().Admit(obs::TenantIdFor("occupier"));
  ASSERT_TRUE(held.ok());

  auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "rejected-tenant", "client");
  ASSERT_TRUE(conn.ok());
  auto outcome = conn->Execute("SELECT COUNT(*) FROM sales");
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsUnavailable())
      << outcome.status().ToString();

  // The connection survives a rejection; releasing the slot unblocks.
  held->Release();
  auto retry = conn->Execute("SELECT COUNT(*) FROM sales");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();

  auto stats = server.Stats();
  EXPECT_GE(stats.rejected_total, 1u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, CancelledQueryReleasesItsAdmissionSlot) {
  NoDbConfig config = ServerConfig();
  config.server_max_in_flight = 1;
  config.server_queue_timeout_ms = 100;
  AdmissionController admission(config);
  NoDbEngine engine(catalog_, config);
  uint32_t tenant = obs::TenantIdFor("cancel-tenant");

  {
    auto ticket = admission.Admit(tenant);
    ASSERT_TRUE(ticket.ok());
    QueryCancelFlag cancel;
    cancel.Cancel();  // fires before the first batch boundary
    QuerySession session(&engine, "cancel-client");
    auto outcome =
        session.ExecuteStreaming("SELECT COUNT(*) FROM sales", nullptr,
                                 &cancel);
    EXPECT_FALSE(outcome.ok());
    EXPECT_TRUE(outcome.status().IsCancelled())
        << outcome.status().ToString();
    // Ticket goes out of scope here exactly as in ServerSession's
    // HandleQuery: cancellation must not leak the slot.
  }
  auto after = admission.Admit(tenant);
  EXPECT_TRUE(after.ok());

  // The engine-level batch path honours the same flag.
  QueryCancelFlag cancel;
  cancel.Cancel();
  auto batch = engine.ExecuteConcurrent(
      {"SELECT COUNT(*) FROM sales", "SELECT COUNT(*) FROM sales"}, 2,
      &cancel);
  ASSERT_EQ(batch.reports.size(), 2u);
  for (const auto& report : batch.reports) {
    EXPECT_TRUE(report.status.IsCancelled());
  }
}

TEST_F(ServerTest, HttpQueryAndMetrics) {
  NoDbConfig config = ServerConfig();
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  auto http = [&](const std::string& request) {
    auto fd = ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(WriteFully(*fd, request.data(), request.size()).ok());
    std::string response;
    char buf[4096];
    for (;;) {
      Status status = ReadFully(*fd, buf, 1);
      if (!status.ok()) break;  // server closes after the response
      response.push_back(buf[0]);
    }
    CloseFd(*fd);
    return response;
  };

  std::string sql = "SELECT region, COUNT(*) AS n FROM sales "
                    "WHERE id < 8 GROUP BY region ORDER BY region";
  std::string response = http(
      "POST /query HTTP/1.0\r\nX-NoDB-Tenant: curl-tenant\r\n"
      "Content-Length: " + std::to_string(sql.size()) + "\r\n\r\n" + sql);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/csv"), std::string::npos);
  EXPECT_NE(response.find("region,n"), std::string::npos) << response;
  EXPECT_NE(response.find("east,2"), std::string::npos) << response;

  std::string metrics = http("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("nodb_server_admitted_total"), std::string::npos);

  std::string bad_sql = http(
      "POST /query HTTP/1.0\r\nContent-Length: 9\r\n\r\nNOT SQL!!");
  EXPECT_NE(bad_sql.find("HTTP/1.0 400"), std::string::npos);

  std::string not_found = http("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(not_found.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST_F(ServerTest, GracefulDrainWritesSnapshots) {
  NoDbConfig config = ServerConfig();
  config.snapshot_mode = SnapshotMode::kManual;  // sidecar next to the CSV
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "drain-tenant", "client");
  ASSERT_TRUE(conn.ok());
  auto outcome = conn->Execute("SELECT COUNT(*) FROM sales WHERE id > 10");
  ASSERT_TRUE(outcome.ok());

  // The shell's \shutdown: GOODBYE comes back, Wait() unblocks, the
  // drain saves the adaptive state built by the query above.
  ASSERT_TRUE(conn->SendShutdown().ok());
  server.Wait();
  ASSERT_TRUE(server.Shutdown().ok());

  auto sidecar = ReadFileToString(path_ + ".nodbmeta");
  ASSERT_TRUE(sidecar.ok())
      << "graceful drain must save snapshots: " << sidecar.status().ToString();
  EXPECT_FALSE(sidecar->empty());

  // A rejected late query: the server no longer accepts connections.
  auto late = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "late", "client");
  EXPECT_FALSE(late.ok());
}

TEST_F(ServerTest, RemoteShutdownCanBeDisabled) {
  NoDbConfig config = ServerConfig();
  config.server_allow_remote_shutdown = false;
  NoDbEngine engine(catalog_, config);
  Server server(&engine, config);
  ASSERT_TRUE(server.Start().ok());
  auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                        "tenant", "client");
  ASSERT_TRUE(conn.ok());
  Status status = conn->SendShutdown();
  EXPECT_FALSE(status.ok());
  // The refusal must not have drained anything.
  auto outcome = conn->Execute("SELECT COUNT(*) FROM sales");
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

/// ---- Per-tenant partitioning of the storage tiers ----------------------

TEST(TenantTest, InterningIsStableAndNamed) {
  uint32_t a = obs::TenantIdFor("intern-a");
  uint32_t b = obs::TenantIdFor("intern-b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::TenantIdFor("intern-a"), a);
  EXPECT_EQ(obs::TenantName(a), "intern-a");
  EXPECT_EQ(obs::TenantName(0), "");
  EXPECT_EQ(obs::ScopedTenantLabel::CurrentId(), 0u);
  {
    obs::ScopedTenantLabel outer(a);
    EXPECT_EQ(obs::ScopedTenantLabel::CurrentId(), a);
    {
      obs::ScopedTenantLabel inner(b);
      EXPECT_EQ(obs::ScopedTenantLabel::CurrentId(), b);
    }
    EXPECT_EQ(obs::ScopedTenantLabel::CurrentId(), a);
  }
  EXPECT_EQ(obs::ScopedTenantLabel::CurrentId(), 0u);
}

std::shared_ptr<const ColumnVector> SegmentOfBytes(size_t n) {
  auto col = std::make_shared<ColumnVector>(DataType::kInt64);
  for (size_t i = 0; i < n / sizeof(int64_t); ++i) {
    col->AppendInt64(static_cast<int64_t>(i));
  }
  return col;
}

TEST(TenantTest, ShadowStoreEvictsOverShareOwnerFirst) {
  // Budget fits ~4 segments; tenant A promotes 3, tenant B promotes 2.
  // A is over its fair share (budget/2), so the fourth-plus promotions
  // evict A's oldest segments — B's stay resident.
  auto probe = SegmentOfBytes(1024);
  size_t seg_bytes;
  {
    ShadowStore sizer(1u << 20);
    sizer.Promote(0, 0, probe, 0);
    seg_bytes = sizer.bytes_used();
  }
  ShadowStore store(seg_bytes * 4);
  uint32_t a = obs::TenantIdFor("store-a");
  uint32_t b = obs::TenantIdFor("store-b");
  {
    obs::ScopedTenantLabel label(a);
    store.Promote(0, 0, SegmentOfBytes(1024), 0);
    store.Promote(0, 1, SegmentOfBytes(1024), 0);
    store.Promote(0, 2, SegmentOfBytes(1024), 0);
  }
  {
    obs::ScopedTenantLabel label(b);
    store.Promote(1, 0, SegmentOfBytes(1024), 0);
    store.Promote(1, 1, SegmentOfBytes(1024), 0);
  }
  // Over budget by one segment: the victim must be A's least recent
  // (attr 0, block 0), never B's.
  EXPECT_LE(store.bytes_used(), store.budget_bytes());
  EXPECT_FALSE(store.Contains(0, 0));
  EXPECT_TRUE(store.Contains(1, 0));
  EXPECT_TRUE(store.Contains(1, 1));
  EXPECT_EQ(store.bytes_used_by(a), 2 * seg_bytes);
  EXPECT_EQ(store.bytes_used_by(b), 2 * seg_bytes);
}

TEST(TenantTest, StatsCollectorPartitionsHeatByTenant) {
  StatsCollector stats(Schema::Make({{"a", DataType::kInt64},
                                     {"b", DataType::kInt64},
                                     {"c", DataType::kInt64},
                                     {"d", DataType::kInt64}}));
  uint32_t a = obs::TenantIdFor("heat-a");
  uint32_t b = obs::TenantIdFor("heat-b");
  {
    obs::ScopedTenantLabel label(a);
    stats.RecordAccessHeat({0, 1});
    stats.RecordAccessHeat({0});
  }
  {
    obs::ScopedTenantLabel label(b);
    stats.RecordAccessHeat({1});
  }
  stats.RecordAccessHeat({2});  // untagged in-process work

  // Global heat is the sum every promotion decision sees...
  EXPECT_EQ(stats.access_heat(0), 2u);
  EXPECT_EQ(stats.access_heat(1), 2u);
  EXPECT_EQ(stats.access_heat(2), 1u);
  // ...while the per-tenant slices attribute it.
  EXPECT_EQ(stats.access_heat_for_tenant(a, 0), 2u);
  EXPECT_EQ(stats.access_heat_for_tenant(a, 1), 1u);
  EXPECT_EQ(stats.access_heat_for_tenant(b, 1), 1u);
  EXPECT_EQ(stats.access_heat_for_tenant(b, 0), 0u);
  EXPECT_EQ(stats.access_heat_for_tenant(0, 2), 1u);
}

}  // namespace
}  // namespace server
}  // namespace nodb
