// Tests for the SQL frontend: lexer, parser, binder/planner — executed
// against an in-memory column store so they are independent of the raw
// layer.

#include <gtest/gtest.h>

#include <map>

#include "exec/column_store.h"
#include "exec/query_result.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "types/date_util.h"

namespace nodb {
namespace {

// ------------------------------------------------------------------- lexer

TEST(LexerTest, TokenKinds) {
  auto tokens = LexSql("SELECT a1, 42, 1.5, 'it''s' <> <= FROM t;");
  ASSERT_TRUE(tokens.ok());
  auto& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kIdentifier);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "a1");
  EXPECT_EQ(t[3].type, TokenType::kInteger);
  EXPECT_EQ(t[5].type, TokenType::kFloat);
  EXPECT_EQ(t[7].type, TokenType::kString);
  EXPECT_EQ(t[7].literal, "it's");
  EXPECT_EQ(t[8].text, "<>");
  EXPECT_EQ(t[9].text, "<=");
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT @a").ok());
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, FullSelect) {
  auto stmt = ParseSelect(
      "SELECT a, b AS bee, COUNT(*) AS n FROM t WHERE a > 5 AND b < 3 "
      "GROUP BY a, b ORDER BY n DESC LIMIT 10 OFFSET 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[1].alias, "bee");
  EXPECT_EQ(stmt->items[2].expr->kind, ParsedExpr::Kind::kAggregate);
  EXPECT_EQ(stmt->from_table, "t");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ParsedExpr::Kind::kLogical);
  EXPECT_EQ(stmt->group_by.size(), 2u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_EQ(*stmt->limit, 10u);
  EXPECT_EQ(stmt->offset, 2u);
}

TEST(ParserTest, SelectStarAndAliases) {
  auto stmt = ParseSelect("SELECT * FROM lineitem l");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select_star);
  EXPECT_EQ(stmt->from_alias, "l");
}

TEST(ParserTest, JoinClause) {
  auto stmt = ParseSelect(
      "SELECT l.a, o.b FROM lineitem l JOIN orders o ON l.k = o.k "
      "WHERE l.a > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->has_join);
  EXPECT_EQ(stmt->join_table, "orders");
  EXPECT_EQ(stmt->join_alias, "o");
  ASSERT_NE(stmt->join_condition, nullptr);
  EXPECT_EQ(stmt->join_condition->kind, ParsedExpr::Kind::kCompare);
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a BETWEEN 2 AND 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ParsedExpr::Kind::kLogical);
  EXPECT_EQ(stmt->where->logic, LogicalOp::kAnd);
  EXPECT_EQ(stmt->where->left->cmp, CompareOp::kGe);
  EXPECT_EQ(stmt->where->right->cmp, CompareOp::kLe);
}

TEST(ParserTest, InListDesugarsToOrs) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ParsedExpr::Kind::kLogical);
  EXPECT_EQ(stmt->where->logic, LogicalOp::kOr);
}

TEST(ParserTest, NotLikeAndIsNull) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE name NOT LIKE 'x%' AND b IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto& both = *stmt->where;
  EXPECT_EQ(both.left->kind, ParsedExpr::Kind::kLike);
  EXPECT_TRUE(both.left->negated);
  EXPECT_EQ(both.right->kind, ParsedExpr::Kind::kIsNull);
  EXPECT_TRUE(both.right->negated);
}

TEST(ParserTest, DateLiteralAndUnaryMinus) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE d >= DATE '1994-01-01' AND a > -5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->where->left->right->value.is_date());
  EXPECT_EQ(stmt->where->right->right->value, Value::Int64(-5));
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * 2 parses as a + (b * 2); AND binds tighter than OR.
  auto stmt = ParseSelect("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->logic, LogicalOp::kOr);
  EXPECT_EQ(stmt->where->right->logic, LogicalOp::kAnd);
  auto arith = ParseSelect("SELECT a + b * 2 FROM t");
  ASSERT_TRUE(arith.ok());
  EXPECT_EQ(arith->items[0].expr->arith, ArithOp::kAdd);
  EXPECT_EQ(arith->items[0].expr->right->arith, ArithOp::kMul);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage +").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t JOIN u").ok());  // missing ON
}

// ----------------------------------------------------------------- planner

/// Planner tests run over hand-built in-memory tables.
class PlannerTest : public ::testing::Test, public ScanFactory {
 protected:
  void SetUp() override {
    auto people = Schema::Make({{"id", DataType::kInt64},
                                {"name", DataType::kString},
                                {"age", DataType::kInt64},
                                {"joined", DataType::kDate}});
    people_ = std::make_shared<ColumnStoreTable>(people);
    struct P {
      int64_t id;
      const char* name;
      int64_t age;
      const char* joined;
    };
    P rows[] = {{1, "ada", 30, "2001-05-01"},
                {2, "bob", 25, "2003-07-12"},
                {3, "carol", 35, "1999-01-30"},
                {4, "dave", 25, "2005-11-03"}};
    for (const auto& r : rows) {
      people_->column(0).AppendInt64(r.id);
      people_->column(1).AppendString(r.name);
      people_->column(2).AppendInt64(r.age);
      people_->column(3).AppendDate(*ParseDateForTest(r.joined));
    }
    people_->SetNumRows(4);

    auto pets = Schema::Make({{"owner", DataType::kInt64},
                              {"pet", DataType::kString}});
    pets_ = std::make_shared<ColumnStoreTable>(pets);
    struct Q {
      int64_t owner;
      const char* pet;
    };
    Q qs[] = {{1, "cat"}, {1, "dog"}, {3, "fish"}, {9, "rock"}};
    for (const auto& q : qs) {
      pets_->column(0).AppendInt64(q.owner);
      pets_->column(1).AppendString(q.pet);
    }
    pets_->SetNumRows(4);
  }

  static Result<int64_t> ParseDateForTest(const char* s);

  Result<std::shared_ptr<Schema>> TableSchema(
      const std::string& table) override {
    if (table == "people") return people_->schema();
    if (table == "pets") return pets_->schema();
    return Status::NotFound("no table " + table);
  }

  Result<OperatorPtr> CreateScan(
      const std::string& table,
      const std::vector<size_t>& projection) override {
    last_projection_[table] = projection;
    if (table == "people") {
      return OperatorPtr(
          std::make_unique<ColumnStoreScan>(people_, projection));
    }
    if (table == "pets") {
      return OperatorPtr(
          std::make_unique<ColumnStoreScan>(pets_, projection));
    }
    return Status::NotFound("no table " + table);
  }

  Result<QueryResult> Run(const std::string& sql) {
    NODB_ASSIGN_OR_RETURN(auto plan, PlanSql(sql, this));
    return QueryResult::Drain(plan.get());
  }

  std::shared_ptr<ColumnStoreTable> people_;
  std::shared_ptr<ColumnStoreTable> pets_;
  std::map<std::string, std::vector<size_t>> last_projection_;
};

Result<int64_t> PlannerTest::ParseDateForTest(const char* s) {
  return ParseDate(s);
}

TEST_F(PlannerTest, SimpleProjection) {
  auto result = Run("SELECT name FROM people WHERE age = 25");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->CanonicalRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "bob");
  EXPECT_EQ(rows[1], "dave");
}

TEST_F(PlannerTest, RequiredColumnAnalysisPrunesScan) {
  ASSERT_TRUE(Run("SELECT name FROM people WHERE age = 25").ok());
  // Only name (1) and age (2) should be scanned.
  EXPECT_EQ(last_projection_["people"], (std::vector<size_t>{1, 2}));
  ASSERT_TRUE(Run("SELECT COUNT(*) FROM people").ok());
  EXPECT_TRUE(last_projection_["people"].empty());
}

TEST_F(PlannerTest, SelectStar) {
  auto result = Run("SELECT * FROM people WHERE id = 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->schema()->num_fields(), 4u);
  EXPECT_EQ(result->Row(0)[1], Value::String("carol"));
}

TEST_F(PlannerTest, AggregateWithGroupBy) {
  auto result = Run(
      "SELECT age, COUNT(*) AS n, MIN(name) AS first FROM people "
      "GROUP BY age ORDER BY age");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(25));
  EXPECT_EQ(result->Row(0)[1], Value::Int64(2));
  EXPECT_EQ(result->Row(0)[2], Value::String("bob"));
  EXPECT_EQ(result->Row(2)[0], Value::Int64(35));
}

TEST_F(PlannerTest, AggregateOverExpression) {
  auto result = Run("SELECT SUM(age * 2) AS s FROM people");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Row(0)[0], Value::Int64(230));
}

TEST_F(PlannerTest, SelectItemMustBeGroupedOrAggregate) {
  auto bad = Run("SELECT name, COUNT(*) FROM people GROUP BY age");
  EXPECT_FALSE(bad.ok());
  auto also_bad = Run("SELECT name, COUNT(*) FROM people");
  EXPECT_FALSE(also_bad.ok());
}

TEST_F(PlannerTest, OrderBySortsBeforeProjection) {
  // Ordering by a column that is not selected.
  auto result = Run("SELECT name FROM people ORDER BY age DESC, name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Row(0)[0], Value::String("carol"));
  EXPECT_EQ(result->Row(1)[0], Value::String("ada"));
  EXPECT_EQ(result->Row(2)[0], Value::String("bob"));
  EXPECT_EQ(result->Row(3)[0], Value::String("dave"));
}

TEST_F(PlannerTest, DateCoercionInComparison) {
  auto result =
      Run("SELECT name FROM people WHERE joined < '2002-01-01'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->CanonicalRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "ada");
  EXPECT_EQ(rows[1], "carol");
}

TEST_F(PlannerTest, JoinWithQualifiedColumns) {
  auto result = Run(
      "SELECT p.name, q.pet FROM people p JOIN pets q ON p.id = q.owner "
      "ORDER BY p.name, q.pet");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(0)[0], Value::String("ada"));
  EXPECT_EQ(result->Row(0)[1], Value::String("cat"));
  EXPECT_EQ(result->Row(1)[1], Value::String("dog"));
  EXPECT_EQ(result->Row(2)[0], Value::String("carol"));
}

TEST_F(PlannerTest, JoinWithWhereAndAggregate) {
  auto result = Run(
      "SELECT COUNT(*) AS n FROM people p JOIN pets q ON p.id = q.owner "
      "WHERE p.age >= 30");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Row(0)[0], Value::Int64(3));
}

TEST_F(PlannerTest, UnknownColumnsAndQualifiers) {
  EXPECT_FALSE(Run("SELECT nope FROM people").ok());
  // Unqualified but unique across the two tables: resolvable.
  EXPECT_TRUE(Run("SELECT pet FROM people p JOIN pets q ON p.id = q.owner")
                  .ok());
  // Unknown qualifier.
  EXPECT_FALSE(
      Run("SELECT z.name FROM people p JOIN pets q ON p.id = q.owner")
          .ok());
}

TEST_F(PlannerTest, SelfJoinAmbiguityDetected) {
  // Same table twice without distinct aliases -> duplicate alias error;
  // with aliases an unqualified shared column is ambiguous.
  EXPECT_FALSE(Run("SELECT id FROM people JOIN people ON id = id").ok());
  EXPECT_FALSE(
      Run("SELECT id FROM people a JOIN people b ON a.id = b.id").ok());
  EXPECT_TRUE(
      Run("SELECT a.id FROM people a JOIN people b ON a.id = b.id").ok());
}

TEST_F(PlannerTest, WhereTruthiness) {
  // Booleans are INT columns, so a numeric WHERE is accepted with
  // nonzero-is-true semantics (the SQLite convention)...
  auto numeric = Run("SELECT name FROM people WHERE age - 25");
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ(numeric->num_rows(), 2u);  // ages 30 and 35
  // ...but strings are not booleans.
  EXPECT_FALSE(Run("SELECT name FROM people WHERE name").ok());
}

TEST_F(PlannerTest, NonEquiJoinRejected) {
  EXPECT_FALSE(
      Run("SELECT p.name FROM people p JOIN pets q ON p.id > q.owner")
          .ok());
}

TEST_F(PlannerTest, LikeInQueries) {
  auto result = Run("SELECT name FROM people WHERE name LIKE '%a%'");
  ASSERT_TRUE(result.ok());
  auto rows = result->CanonicalRows();
  ASSERT_EQ(rows.size(), 3u);  // ada, carol, dave
}

TEST_F(PlannerTest, InAndBetweenEndToEnd) {
  auto result =
      Run("SELECT name FROM people WHERE id IN (1, 4) OR age BETWEEN "
          "34 AND 36");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CanonicalRows(),
            (std::vector<std::string>{"ada", "carol", "dave"}));
}

TEST_F(PlannerTest, LimitOffsetEndToEnd) {
  auto result = Run("SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(2));
  EXPECT_EQ(result->Row(1)[0], Value::Int64(3));
}

TEST_F(PlannerTest, DistinctDeduplicatesRows) {
  auto result = Run("SELECT DISTINCT age FROM people ORDER BY age");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(25));
  EXPECT_EQ(result->Row(1)[0], Value::Int64(30));
  EXPECT_EQ(result->Row(2)[0], Value::Int64(35));

  // Multi-column DISTINCT keeps genuinely distinct combinations.
  auto multi = Run("SELECT DISTINCT age, age * 2 AS dbl FROM people");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->num_rows(), 3u);

  // Without duplicates DISTINCT is a no-op.
  auto all = Run("SELECT DISTINCT id FROM people");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 4u);
}

TEST_F(PlannerTest, HavingFiltersGroups) {
  auto result = Run(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age "
      "HAVING COUNT(*) > 1 ORDER BY age");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(25));
  EXPECT_EQ(result->Row(0)[1], Value::Int64(2));
}

TEST_F(PlannerTest, HavingOnAliasAndGroupColumn) {
  auto by_alias = Run(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age HAVING n = 1");
  ASSERT_TRUE(by_alias.ok()) << by_alias.status().ToString();
  EXPECT_EQ(by_alias->num_rows(), 2u);  // ages 30 and 35

  auto by_group = Run(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age "
      "HAVING age >= 30 AND n = 1 ORDER BY age");
  ASSERT_TRUE(by_group.ok()) << by_group.status().ToString();
  ASSERT_EQ(by_group->num_rows(), 2u);
  EXPECT_EQ(by_group->Row(0)[0], Value::Int64(30));
}

TEST_F(PlannerTest, HavingErrors) {
  // HAVING without aggregation.
  EXPECT_FALSE(Run("SELECT name FROM people HAVING age > 1").ok());
  // HAVING referencing a non-output column.
  EXPECT_FALSE(
      Run("SELECT age, COUNT(*) AS n FROM people GROUP BY age "
          "HAVING name = 'ada'")
          .ok());
  // HAVING aggregate not present in the SELECT list.
  EXPECT_FALSE(
      Run("SELECT age, COUNT(*) AS n FROM people GROUP BY age "
          "HAVING SUM(id) > 3")
          .ok());
}

TEST_F(PlannerTest, HavingAggregatePresentInSelectWorks) {
  auto result = Run(
      "SELECT age, SUM(id) AS s FROM people GROUP BY age "
      "HAVING SUM(id) > 3 ORDER BY age");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Groups: 25 -> ids 2+4=6; 30 -> 1; 35 -> 3. Only 25 passes.
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(25));
}

TEST_F(PlannerTest, JoinSplitsSingleTableConjunctsToTheirSide) {
  // Regression: join queries used to evaluate *every* WHERE conjunct
  // above the HashJoin. Single-table conjuncts must run on their own
  // side, below the join; only the genuinely cross-table conjunct may
  // see joined rows.
  std::string explain;
  PlannerOptions options;
  options.explain = &explain;
  auto plan = PlanSql(
      "SELECT p.name, q.pet FROM people p JOIN pets q ON p.id = q.owner "
      "WHERE p.age >= 30 AND q.pet LIKE '%o%' AND p.id + q.owner > 0",
      this, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = QueryResult::Drain(plan->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Pairs: ada-cat, ada-dog, carol-fish; LIKE '%o%' keeps only dog.
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->Row(0)[0], Value::String("ada"));
  EXPECT_EQ(result->Row(0)[1], Value::String("dog"));

  size_t join_pos = explain.find("HASH JOIN");
  size_t age_pos = explain.find("FILTER (p.age >= 30)");
  size_t pet_pos = explain.find("FILTER (q.pet LIKE '%o%')");
  size_t cross_pos = explain.find("FILTER ((p.id + q.owner) > 0)");
  ASSERT_NE(join_pos, std::string::npos) << explain;
  ASSERT_NE(age_pos, std::string::npos) << explain;
  ASSERT_NE(pet_pos, std::string::npos) << explain;
  ASSERT_NE(cross_pos, std::string::npos) << explain;
  EXPECT_LT(age_pos, join_pos) << explain;
  EXPECT_LT(pet_pos, join_pos) << explain;
  EXPECT_GT(cross_pos, join_pos) << explain;
}

TEST_F(PlannerTest, JoinBuildSideConjunctRebasesCorrectly) {
  // A conjunct purely over the build (right) table must survive the
  // index rebase onto the build scan's own schema.
  auto result = Run(
      "SELECT p.name, q.pet FROM people p JOIN pets q ON p.id = q.owner "
      "WHERE q.pet = 'dog'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->Row(0)[0], Value::String("ada"));

  auto agg = Run(
      "SELECT COUNT(*) AS n FROM people p JOIN pets q ON p.id = q.owner "
      "WHERE p.age >= 30 AND q.pet <> 'fish'");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ(agg->Row(0)[0], Value::Int64(2));  // ada-cat, ada-dog
}

TEST_F(PlannerTest, JoinSideConjunctsReorderBySelectivity) {
  // Regression: join queries used to bypass predicate reordering
  // entirely. Side conjuncts now reorder by the stats oracle.
  class FakeStats : public SelectivityEstimator {
   public:
    std::optional<double> EstimateSelectivity(
        const std::string&, const Expr& pred) const override {
      return pred.ToString().find("age") != std::string::npos
                 ? std::optional<double>(0.01)
                 : std::optional<double>(0.9);
    }
  };
  FakeStats stats;
  std::string explain;
  PlannerOptions options;
  options.stats = &stats;
  options.explain = &explain;
  auto plan = PlanSql(
      "SELECT p.name, q.pet FROM people p JOIN pets q ON p.id = q.owner "
      "WHERE p.id > 0 AND p.age >= 30",
      this, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  size_t age_pos = explain.find("FILTER (p.age >= 30)");
  size_t id_pos = explain.find("FILTER (p.id > 0)");
  ASSERT_NE(age_pos, std::string::npos) << explain;
  ASSERT_NE(id_pos, std::string::npos) << explain;
  EXPECT_LT(age_pos, id_pos) << explain;  // selective first

  auto result = QueryResult::Drain(plan->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);  // ada-cat, ada-dog, carol-fish
}

TEST_F(PlannerTest, StatsReorderingPreservesSemantics) {
  /// A fake estimator claiming age predicates are highly selective.
  class FakeStats : public SelectivityEstimator {
   public:
    std::optional<double> EstimateSelectivity(
        const std::string&, const Expr& pred) const override {
      return pred.ToString().find("age") != std::string::npos
                 ? std::optional<double>(0.01)
                 : std::optional<double>(0.9);
    }
  };
  FakeStats stats;
  PlannerOptions options;
  options.stats = &stats;
  auto plan = PlanSql(
      "SELECT name FROM people WHERE id > 0 AND age = 25", this, options);
  ASSERT_TRUE(plan.ok());
  auto result = QueryResult::Drain(plan->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CanonicalRows(),
            (std::vector<std::string>{"bob", "dave"}));
}

}  // namespace
}  // namespace nodb
