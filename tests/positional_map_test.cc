// Tests for the adaptive positional map: tuple index, chunk probing
// (exact spans and anchors), the distance policy and LRU eviction under
// a byte budget.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "raw/positional_map.h"
#include "util/random.h"

namespace nodb {
namespace {

constexpr size_t kBudget = 1 << 20;

PositionalMap MakeMap(size_t budget = kBudget, uint32_t block = 64,
                      uint32_t max_chunks = 1) {
  return PositionalMap(budget, block, max_chunks);
}

/// Commits a chunk covering rows [first, first+rows) for `attrs`,
/// with deterministic spans: attr a of row r starts at a*10+r%7 and
/// ends at a*10+5+r%7.
void CommitChunk(PositionalMap* map, uint64_t first, size_t rows,
                 const std::vector<uint32_t>& attrs) {
  auto builder = map->StartChunk(first, attrs);
  std::vector<uint32_t> starts(attrs.size());
  std::vector<uint32_t> ends(attrs.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < attrs.size(); ++j) {
      starts[j] = attrs[j] * 10 + static_cast<uint32_t>(r % 7);
      ends[j] = starts[j] + 5;
    }
    builder.AddRow(starts.data(), ends.data());
  }
  map->CommitChunk(std::move(builder));
}

TEST(PositionalMapTest, RowIndexDiscovery) {
  PositionalMap map = MakeMap();
  EXPECT_EQ(map.known_rows(), 0u);
  EXPECT_FALSE(map.rows_complete());
  map.AddRowStart(0);
  map.AddRowStart(100);
  map.AddRowStart(200);
  EXPECT_EQ(map.known_rows(), 3u);
  EXPECT_EQ(map.row_start(1), 100u);
  map.MarkRowsComplete(300);
  EXPECT_TRUE(map.rows_complete());
  EXPECT_EQ(map.indexed_file_size(), 300u);
  map.ReopenForAppend();
  EXPECT_FALSE(map.rows_complete());
  EXPECT_EQ(map.known_rows(), 3u);  // boundaries survive appends
}

TEST(PositionalMapTest, ExactProbeFromCommittedChunk) {
  PositionalMap map = MakeMap();
  CommitChunk(&map, 0, 64, {3, 7});
  auto plan = map.PrepareBlock(0, {3, 7});
  EXPECT_TRUE(plan.fully_covered());
  EXPECT_EQ(plan.chunks_used(), 1u);
  auto probe = plan.Lookup(5, 0);  // row 5, attr 3
  EXPECT_TRUE(probe.exact);
  EXPECT_EQ(probe.start, 35u);  // 3*10 + 5
  EXPECT_EQ(probe.end, 40u);
  auto probe7 = plan.Lookup(5, 1);
  EXPECT_TRUE(probe7.exact);
  EXPECT_EQ(probe7.start, 75u);
}

TEST(PositionalMapTest, AnchorProbeForUncoveredAttribute) {
  PositionalMap map = MakeMap();
  CommitChunk(&map, 0, 64, {3});
  // Attr 5 is not indexed; the best anchor is "attr 4 starts at end(3)+1".
  auto plan = map.PrepareBlock(0, {5});
  EXPECT_FALSE(plan.fully_covered());
  auto probe = plan.Lookup(2, 0);
  EXPECT_FALSE(probe.exact);
  EXPECT_EQ(probe.anchor_attr, 4u);
  EXPECT_EQ(probe.anchor_rel, 38u);  // end(3,row2) = 3*10+5+2 = 37, +1
}

TEST(PositionalMapTest, NoInformationMeansAttrZeroAnchor) {
  PositionalMap map = MakeMap();
  auto plan = map.PrepareBlock(0, {4});
  auto probe = plan.Lookup(0, 0);
  EXPECT_FALSE(probe.exact);
  EXPECT_EQ(probe.anchor_attr, 0u);
  EXPECT_EQ(probe.anchor_rel, 0u);
}

TEST(PositionalMapTest, AnchorPicksGreatestAttributeAcrossChunks) {
  PositionalMap map = MakeMap();
  CommitChunk(&map, 0, 64, {1});
  CommitChunk(&map, 0, 64, {4});
  auto plan = map.PrepareBlock(0, {9});
  auto probe = plan.Lookup(0, 0);
  EXPECT_FALSE(probe.exact);
  EXPECT_EQ(probe.anchor_attr, 5u);  // from the {4} chunk
}

TEST(PositionalMapTest, RowBeyondChunkCoverageHasNoInfo) {
  PositionalMap map = MakeMap();
  CommitChunk(&map, 0, 10, {2});  // partial chunk: rows 0..9
  auto plan = map.PrepareBlock(0, {2});
  EXPECT_TRUE(plan.Lookup(5, 0).exact);
  auto beyond = plan.Lookup(20, 0);
  EXPECT_FALSE(beyond.exact);
  EXPECT_EQ(beyond.anchor_attr, 0u);
}

TEST(PositionalMapTest, DistancePolicy) {
  PositionalMap map = MakeMap(kBudget, 64, /*max_covering_chunks=*/1);
  CommitChunk(&map, 0, 64, {1, 2});
  CommitChunk(&map, 0, 64, {7, 8});

  // Fully inside one chunk: no new combination.
  auto plan_a = map.PrepareBlock(0, {1, 2});
  EXPECT_FALSE(map.ShouldIndexCombination(plan_a));
  // Spread over two chunks: index the new combination.
  auto plan_b = map.PrepareBlock(0, {2, 7});
  EXPECT_TRUE(plan_b.fully_covered());
  EXPECT_EQ(plan_b.chunks_used(), 2u);
  EXPECT_TRUE(map.ShouldIndexCombination(plan_b));
  // Not covered at all: index.
  auto plan_c = map.PrepareBlock(0, {5});
  EXPECT_TRUE(map.ShouldIndexCombination(plan_c));

  // With a laxer policy the two-chunk case is acceptable.
  PositionalMap lax = MakeMap(kBudget, 64, 2);
  CommitChunk(&lax, 0, 64, {1, 2});
  CommitChunk(&lax, 0, 64, {7, 8});
  auto plan_d = lax.PrepareBlock(0, {2, 7});
  EXPECT_FALSE(lax.ShouldIndexCombination(plan_d));
}

TEST(PositionalMapTest, BudgetNeverExceededAndLruEvicts) {
  // Each chunk: 64 rows x 1 attr x 8 bytes = 512B data + overhead.
  PositionalMap map = MakeMap(8 * 1024, 64, 1);
  for (uint32_t a = 0; a < 40; ++a) {
    CommitChunk(&map, 0, 64, {a});
    EXPECT_LE(map.bytes_used(), 8u * 1024u) << "after chunk " << a;
  }
  EXPECT_GT(map.evictions(), 0u);
  EXPECT_LT(map.num_chunks(), 40u);

  // The oldest attributes were evicted, the newest survive.
  auto plan_new = map.PrepareBlock(0, {39});
  EXPECT_TRUE(plan_new.fully_covered());
  auto plan_old = map.PrepareBlock(0, {0});
  EXPECT_FALSE(plan_old.fully_covered());
}

TEST(PositionalMapTest, TouchingRefreshesLruOrder) {
  PositionalMap map = MakeMap(8 * 1024, 64, 1);
  CommitChunk(&map, 0, 64, {0});
  // Fill until close to budget, touching attr 0 each time to keep it hot.
  for (uint32_t a = 1; a < 40; ++a) {
    (void)map.PrepareBlock(0, {0});  // touch
    CommitChunk(&map, 0, 64, {a});
  }
  // Attr 0 must still be resident despite being the oldest insert.
  auto plan = map.PrepareBlock(0, {0});
  EXPECT_TRUE(plan.fully_covered());
}

TEST(PositionalMapTest, ChunksArePerBlock) {
  PositionalMap map = MakeMap(kBudget, 64, 1);
  CommitChunk(&map, 0, 64, {2});    // block 0
  CommitChunk(&map, 128, 64, {2});  // block 2
  EXPECT_TRUE(map.PrepareBlock(0, {2}).fully_covered());
  EXPECT_FALSE(map.PrepareBlock(64, {2}).fully_covered());  // block 1
  EXPECT_TRUE(map.PrepareBlock(128, {2}).fully_covered());
}

TEST(PositionalMapTest, CoverageFraction) {
  PositionalMap map = MakeMap(kBudget, 64, 1);
  for (int i = 0; i < 128; ++i) map.AddRowStart(i * 10);
  CommitChunk(&map, 0, 64, {3});
  EXPECT_DOUBLE_EQ(map.CoverageFraction(3), 0.5);
  EXPECT_DOUBLE_EQ(map.CoverageFraction(4), 0.0);
  CommitChunk(&map, 64, 64, {3});
  EXPECT_DOUBLE_EQ(map.CoverageFraction(3), 1.0);
}

TEST(PositionalMapTest, ClearDropsEverything) {
  PositionalMap map = MakeMap();
  map.AddRowStart(0);
  CommitChunk(&map, 0, 64, {1});
  map.MarkRowsComplete(1000);
  map.Clear();
  EXPECT_EQ(map.known_rows(), 0u);
  EXPECT_EQ(map.num_chunks(), 0u);
  EXPECT_EQ(map.bytes_used(), 0u);
  EXPECT_FALSE(map.rows_complete());
  EXPECT_FALSE(map.PrepareBlock(0, {1}).fully_covered());
}

/// Property sweep: under random chunk commits and probes across block
/// sizes, the invariants hold: budget respected; probes never return a
/// position for an attribute *after* the requested one; exact probes
/// return the committed span.
class MapPropertySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MapPropertySweep, InvariantsUnderRandomWorkload) {
  const uint32_t rows_per_block = GetParam();
  const size_t budget = 16 * 1024;
  PositionalMap map(budget, rows_per_block, 1);
  Random rng(rows_per_block);

  for (int iter = 0; iter < 200; ++iter) {
    uint64_t block = rng.Uniform(8);
    uint64_t first = block * rows_per_block;
    size_t nattrs = 1 + rng.Uniform(4);
    std::vector<uint32_t> attrs;
    uint32_t a = static_cast<uint32_t>(rng.Uniform(6));
    for (size_t i = 0; i < nattrs; ++i) {
      attrs.push_back(a);
      a += 1 + static_cast<uint32_t>(rng.Uniform(5));
    }
    CommitChunk(&map, first, rows_per_block, attrs);
    ASSERT_LE(map.bytes_used(), budget);

    // Random probes.
    for (int p = 0; p < 20; ++p) {
      uint32_t want = static_cast<uint32_t>(rng.Uniform(30));
      auto plan = map.PrepareBlock(first, {want});
      auto probe = plan.Lookup(first + rng.Uniform(rows_per_block), 0);
      if (probe.exact) {
        // Exact spans obey the deterministic generator.
        EXPECT_EQ(probe.end - probe.start, 5u);
      } else {
        EXPECT_LE(probe.anchor_attr, want);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, MapPropertySweep,
                         ::testing::Values(16, 64, 256, 1024));

// --------------------------------------------------------- concurrency

TEST(PositionalMapConcurrencyTest, RacingScannersDiscoverEachRowOnce) {
  // Four threads walk a simulated fixed-width file with the scan's
  // snapshot + discovery-baton protocol (newline search replaced by
  // arithmetic). Every thread must see every row at its true offset,
  // and the published index must contain each row exactly once.
  const uint32_t kBlock = 32;
  const uint64_t kRows = 1500;
  const uint64_t kWidth = 10;  // row i spans [i*10, i*10 + 9)
  const uint64_t kFileSize = kRows * kWidth;
  PositionalMap map = MakeMap(kBudget, kBlock);

  auto locate = [&](uint64_t row, uint64_t* start, uint64_t* end) {
    std::vector<uint64_t> bounds;
    while (true) {
      auto snap = map.SnapshotRows(
          row, kBlock - static_cast<uint32_t>(row % kBlock), &bounds);
      if (snap.rows > 0) {
        *start = bounds[0];
        *end = bounds[1] - 1;
        return true;
      }
      if (snap.complete && row >= snap.known_rows) return false;
      PositionalMap::Discovery discovery(&map);
      uint64_t resume = 0;
      uint64_t frontier = 0;
      while (discovery.NeedsRow(row, &resume, &frontier)) {
        if (resume >= kFileSize) {
          discovery.MarkComplete(kFileSize);
          break;
        }
        uint64_t line_end = resume + kWidth - 1;  // "find the newline"
        discovery.PublishRow(resume, line_end);
        if (frontier == row) {
          *start = resume;
          *end = line_end;
          return true;
        }
      }
    }
  };

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      uint64_t start = 0;
      uint64_t end = 0;
      for (uint64_t row = 0; row < kRows; ++row) {
        if (!locate(row, &start, &end) || start != row * kWidth ||
            end != row * kWidth + kWidth - 1) {
          ++errors;
          return;
        }
      }
      if (locate(kRows, &start, &end)) ++errors;  // past the end
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(map.rows_complete());
  ASSERT_EQ(map.known_rows(), kRows);
  for (uint64_t row = 0; row < kRows; row += 97) {
    EXPECT_EQ(map.row_start(row), row * kWidth);
  }
}

TEST(PositionalMapConcurrencyTest, ProbesStayValidUnderConcurrentEviction) {
  // Writers commit chunks into a deliberately tiny budget (constant
  // eviction) while readers prepare plans and probe them; the spans a
  // plan serves must always match the generator formula because plans
  // pin their chunks.
  PositionalMap map = MakeMap(/*budget=*/12 * 1024, /*block=*/64);
  const uint64_t kBlocks = 24;

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Random rng(42 + static_cast<uint64_t>(t));
      for (int i = 0; i < 1500; ++i) {
        uint64_t block = rng.Uniform(kBlocks);
        std::vector<uint32_t> attrs =
            rng.Bernoulli(0.5) ? std::vector<uint32_t>{3, 7}
                               : std::vector<uint32_t>{2, 5, 9};
        CommitChunk(&map, block * 64, 64, attrs);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Random rng(1000 + static_cast<uint64_t>(t));
      while (!stop.load()) {
        uint64_t block = rng.Uniform(kBlocks);
        std::vector<uint32_t> attrs{3, 7};
        auto plan = map.PrepareBlock(block * 64, attrs);
        for (uint64_t r = 0; r < 64; r += 13) {
          auto probe = plan.Lookup(block * 64 + r, 0);
          if (probe.exact &&
              probe.start != 3 * 10 + static_cast<uint32_t>(r % 7)) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : readers) th.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(map.bytes_used(), 12 * 1024u);
}

}  // namespace
}  // namespace nodb
