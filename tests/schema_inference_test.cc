// Tests for CSV schema inference — the zero-friction entry point:
// query a file you never described.

#include <gtest/gtest.h>

#include "csv/schema_inference.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"

namespace nodb {
namespace {

class SchemaInferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-infer");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  Result<InferredTable> Infer(const std::string& content,
                              CsvDialect dialect = CsvDialect(),
                              InferenceOptions options = {}) {
    std::string path = dir_->FilePath("f.csv");
    EXPECT_TRUE(WriteStringToFile(path, content).ok());
    return InferSchema(path, dialect, options);
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(SchemaInferenceTest, BasicTypes) {
  auto t = Infer("1,2.5,hello,1994-01-02\n-3,7,world,1999-12-31\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->schema->num_fields(), 4u);
  EXPECT_EQ(t->schema->field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema->field(1).type, DataType::kDouble);  // 2.5 widens 7
  EXPECT_EQ(t->schema->field(2).type, DataType::kString);
  EXPECT_EQ(t->schema->field(3).type, DataType::kDate);
  EXPECT_EQ(t->schema->field(0).name, "attr0");
  EXPECT_FALSE(t->dialect.has_header);
  EXPECT_EQ(t->sampled_rows, 2u);
}

TEST_F(SchemaInferenceTest, IntWidensToDouble) {
  auto t = Infer("1\n2\n3.5\n4\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->field(0).type, DataType::kDouble);
}

TEST_F(SchemaInferenceTest, ConflictWidensToString) {
  auto t = Infer("1,1994-01-01\nx,17\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->field(0).type, DataType::kString);
  EXPECT_EQ(t->schema->field(1).type, DataType::kString);
}

TEST_F(SchemaInferenceTest, EmptyFieldsCarryNoEvidence) {
  auto t = Infer("1,\n,2\n3,\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema->field(1).type, DataType::kInt64);
}

TEST_F(SchemaInferenceTest, AllEmptyColumnFallsBackToString) {
  auto t = Infer("1,\n2,\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->field(1).type, DataType::kString);
}

TEST_F(SchemaInferenceTest, HeaderDetected) {
  auto t = Infer("id,price,city\n1,2.5,berlin\n2,3.5,geneva\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->dialect.has_header);
  EXPECT_EQ(t->schema->field(0).name, "id");
  EXPECT_EQ(t->schema->field(1).name, "price");
  EXPECT_EQ(t->schema->field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema->field(2).type, DataType::kString);
  EXPECT_EQ(t->sampled_rows, 2u);
}

TEST_F(SchemaInferenceTest, AllStringFileHasNoHeaderEvidence) {
  // Every row is text, so the first row is NOT treated as a header
  // (it would not widen anything).
  auto t = Infer("alpha,beta\ngamma,delta\n");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->dialect.has_header);
  EXPECT_EQ(t->schema->field(0).name, "attr0");
}

TEST_F(SchemaInferenceTest, HeaderDetectionCanBeDisabled) {
  InferenceOptions options;
  options.detect_header = false;
  auto t = Infer("id,price\n1,2.5\n", CsvDialect(), options);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->dialect.has_header);
  // The header text forces both columns to STRING.
  EXPECT_EQ(t->schema->field(0).type, DataType::kString);
}

TEST_F(SchemaInferenceTest, PipeDialect) {
  auto t = Infer("1|2.5|x\n3|4.5|y\n", CsvDialect::Pipe());
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->schema->num_fields(), 3u);
  EXPECT_EQ(t->schema->field(1).type, DataType::kDouble);
}

TEST_F(SchemaInferenceTest, ModalWidthWinsOverStrayRows) {
  auto t = Infer("1,2\n3,4\n5,6,7\n8,9\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->num_fields(), 2u);
}

TEST_F(SchemaInferenceTest, SampleLimitRespected) {
  std::string content;
  for (int i = 0; i < 50; ++i) content += std::to_string(i) + "\n";
  content += "not-a-number\n";  // beyond the sample
  InferenceOptions options;
  options.sample_rows = 10;
  auto t = Infer(content, CsvDialect(), options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema->field(0).type, DataType::kInt64);
  EXPECT_LE(t->sampled_rows, 11u);
}

TEST_F(SchemaInferenceTest, EmptyFileIsAnError) {
  auto t = Infer("");
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsInvalidArgument());
}

TEST_F(SchemaInferenceTest, EndToEndQueryOverInferredTable) {
  std::string path = dir_->FilePath("sales.csv");
  ASSERT_TRUE(WriteStringToFile(path,
                                "id,region,amount,day\n"
                                "1,north,10.5,1994-01-01\n"
                                "2,south,20.5,1994-02-01\n"
                                "3,north,30.0,1995-01-01\n")
                  .ok());
  auto inferred = InferSchema(path, CsvDialect());
  ASSERT_TRUE(inferred.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable({"sales", path, inferred->schema,
                                  inferred->dialect})
                  .ok());
  NoDbEngine engine(catalog, NoDbConfig());
  auto result = engine.Execute(
      "SELECT region, SUM(amount) AS s FROM sales "
      "WHERE day < DATE '1995-01-01' GROUP BY region ORDER BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->result.num_rows(), 2u);
  EXPECT_EQ(result->result.Row(0)[0], Value::String("north"));
  EXPECT_DOUBLE_EQ(result->result.Row(0)[1].dbl(), 10.5);
}

}  // namespace
}  // namespace nodb
