// CRC-32C (util/checksum.h) against published vectors, plus the
// streaming/extend property the snapshot writer relies on.

#include "util/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace nodb {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) / "check" vectors for CRC-32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(Crc32c("abc", 3), 0x364B3FB7u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("The quick brown fox jumps over the lazy dog", 43),
            0x22620404u);

  // 32 bytes of zeros (iSCSI test pattern).
  char zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  // 32 bytes of 0xFF.
  unsigned char ffs[32];
  std::memset(ffs, 0xFF, sizeof(ffs));
  EXPECT_EQ(Crc32c(ffs, sizeof(ffs)), 0x62A8AB43u);

  // 0x00..0x1F ascending.
  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data =
      "persistent adaptive-state snapshots survive process restarts";
  uint32_t one_shot = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = Crc32c(data.data(), split);
    uint32_t extended = Crc32c(data.data() + split, data.size() - split,
                               first);
    EXPECT_EQ(extended, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    std::string corrupt = data;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    EXPECT_NE(Crc32c(corrupt.data(), corrupt.size()), clean)
        << "flip at byte " << byte;
  }
}

}  // namespace
}  // namespace nodb
