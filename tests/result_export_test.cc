// Unit tests for WriteResultToCsv: header emission, NULL rendering,
// quoting, and date/double text forms.

#include <gtest/gtest.h>

#include "engines/result_export.h"
#include "exec/column_store.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "types/date_util.h"
#include "util/string_util.h"

namespace nodb {
namespace {

class ResultExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-export");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  /// Builds a QueryResult by draining a scan over a hand-built table.
  Result<QueryResult> MakeResult() {
    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"note", DataType::kString},
                                {"price", DataType::kDouble},
                                {"day", DataType::kDate}});
    auto table = std::make_shared<ColumnStoreTable>(schema);
    table->column(0).AppendInt64(1);
    table->column(1).AppendString("plain");
    table->column(2).AppendDouble(10.5);
    table->column(3).AppendDate(*ParseDate("1994-01-02"));

    table->column(0).AppendNull();
    table->column(1).AppendString("with,comma");
    table->column(2).AppendNull();
    table->column(3).AppendNull();

    table->column(0).AppendInt64(3);
    table->column(1).AppendString("say \"hi\"");
    table->column(2).AppendDouble(-0.25);
    table->column(3).AppendDate(0);
    table->SetNumRows(3);

    ColumnStoreScan scan(table, ColumnStoreScan::AllColumns(*table));
    return QueryResult::Drain(&scan);
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(ResultExportTest, HeaderNullsQuotingAndDates) {
  auto result = MakeResult();
  ASSERT_TRUE(result.ok());
  std::string path = dir_->FilePath("out.csv");
  CsvDialect dialect;
  dialect.has_header = true;
  dialect.allow_quoting = true;
  ASSERT_TRUE(WriteResultToCsv(*result, path, dialect).ok());

  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  auto lines = SplitString(*content, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "id,note,price,day");
  EXPECT_EQ(lines[1], "1,plain,10.5,1994-01-02");
  EXPECT_EQ(lines[2], ",\"with,comma\",,");  // NULLs become empty fields
  EXPECT_EQ(lines[3], "3,\"say \"\"hi\"\"\",-0.25,1970-01-01");
}

TEST_F(ResultExportTest, NoHeaderAndCustomDelimiter) {
  auto result = MakeResult();
  ASSERT_TRUE(result.ok());
  std::string path = dir_->FilePath("out.tbl");
  CsvDialect dialect = CsvDialect::Pipe();
  ASSERT_TRUE(WriteResultToCsv(*result, path, dialect).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  auto lines = SplitString(*content, '\n');
  EXPECT_EQ(lines[0], "1|plain|10.5|1994-01-02");
}

TEST_F(ResultExportTest, EmptyResultWritesHeaderOnly) {
  auto schema = Schema::Make({{"a", DataType::kInt64}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  ColumnStoreScan scan(table, std::vector<size_t>{0});
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  std::string path = dir_->FilePath("empty.csv");
  CsvDialect dialect;
  dialect.has_header = true;
  ASSERT_TRUE(WriteResultToCsv(*result, path, dialect).ok());
  EXPECT_EQ(*ReadFileToString(path), "a\n");
}

}  // namespace
}  // namespace nodb
