// Tests for the engines: NoDbEngine (PostgresRaw) end-to-end SQL, knob
// handling, automatic update detection, the load-first conventional
// engine with its race profiles, and metrics accounting.

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"

namespace nodb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-engine");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));

    path_ = dir_->FilePath("sales.csv");
    std::string content;
    // id, region, amount, day
    const char* regions[] = {"north", "south", "east", "west"};
    for (int i = 0; i < 1000; ++i) {
      content += std::to_string(i);
      content += ",";
      content += regions[i % 4];
      content += ",";
      content += std::to_string((i * 7) % 100);
      content += ".5,";
      content += (i % 2 == 0) ? "1994-01-10" : "1995-03-20";
      content += "\n";
    }
    ASSERT_TRUE(WriteStringToFile(path_, content).ok());
    schema_ = Schema::Make({{"id", DataType::kInt64},
                            {"region", DataType::kString},
                            {"amount", DataType::kDouble},
                            {"day", DataType::kDate}});
    ASSERT_TRUE(
        catalog_.RegisterTable({"sales", path_, schema_, CsvDialect()})
            .ok());
  }

  NoDbConfig SmallBlocks() {
    NoDbConfig config;
    config.rows_per_block = 128;
    return config;
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
  Catalog catalog_;
};

TEST_F(EngineTest, NoDbInitializeIsFree) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto init = engine.Initialize();
  ASSERT_TRUE(init.ok());
  EXPECT_EQ(*init, 0);
  EXPECT_EQ(engine.name(), "PostgresRaw");
}

TEST_F(EngineTest, EndToEndQueries) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto count = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->result.Row(0)[0], Value::Int64(1000));

  auto agg = engine.Execute(
      "SELECT region, COUNT(*) AS n, AVG(amount) AS avg_amount "
      "FROM sales WHERE day < DATE '1995-01-01' GROUP BY region "
      "ORDER BY region");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg->result.num_rows(), 2u);  // even ids: north and east
  EXPECT_EQ(agg->result.Row(0)[0], Value::String("east"));
  EXPECT_EQ(agg->result.Row(0)[1], Value::Int64(250));
  EXPECT_EQ(agg->result.Row(1)[0], Value::String("north"));

  auto like = engine.Execute(
      "SELECT COUNT(*) AS n FROM sales WHERE region LIKE '%th'");
  ASSERT_TRUE(like.ok());
  EXPECT_EQ(like->result.Row(0)[0], Value::Int64(500));
}

TEST_F(EngineTest, MetricsPopulatedAndAdaptive) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto cold =
      engine.Execute("SELECT SUM(amount) AS s FROM sales WHERE id > 10");
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->metrics.total_ns, 0);
  EXPECT_GT(cold->metrics.scan.rows_scanned, 0u);
  EXPECT_GT(cold->metrics.scan.fields_converted, 0u);

  auto warm =
      engine.Execute("SELECT SUM(amount) AS s FROM sales WHERE id > 10");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->result.CanonicalRows(), cold->result.CanonicalRows());
  // The pushed predicate's column (id) is cache-served on the second
  // run; only phase 2 — the qualifying rows' amount values — still
  // converts. (Phase-2 columns are parsed selectively, so they never
  // populate the cache; promotion materializes them instead.)
  EXPECT_LT(warm->metrics.scan.fields_converted,
            cold->metrics.scan.fields_converted);
  EXPECT_GT(warm->metrics.scan.cache_block_hits, 0u);

  EXPECT_EQ(engine.totals().queries, 2u);
  EXPECT_GE(engine.totals().query_ns,
            cold->metrics.total_ns + warm->metrics.total_ns);

  const RawTableState* state = engine.table_state("sales");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->map().rows_complete());
  EXPECT_GT(state->cache().num_segments(), 0u);

  // Two accesses crossed the promotion threshold: once the background
  // pass materializes the hot columns, the third run serves from the
  // store and converts nothing at all.
  engine.WaitForPromotions();
  auto hot =
      engine.Execute("SELECT SUM(amount) AS s FROM sales WHERE id > 10");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->result.CanonicalRows(), cold->result.CanonicalRows());
  EXPECT_EQ(hot->metrics.scan.fields_converted, 0u);
  EXPECT_GT(hot->metrics.scan.rows_from_store, 0u);
}

TEST_F(EngineTest, BaselineConfigDoesNotAdapt) {
  NoDbEngine engine(catalog_, NoDbConfig::Baseline(), "Baseline");
  auto q1 = engine.Execute("SELECT COUNT(*) FROM sales WHERE id > 500");
  ASSERT_TRUE(q1.ok());
  auto q2 = engine.Execute("SELECT COUNT(*) FROM sales WHERE id > 500");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->result.Row(0)[0], Value::Int64(499));
  // No structures exist, so the second query converts as much as the first.
  EXPECT_EQ(q1->metrics.scan.fields_converted,
            q2->metrics.scan.fields_converted);
  EXPECT_EQ(q2->metrics.scan.cache_block_hits, 0u);
  EXPECT_EQ(q2->metrics.scan.map_exact_probes, 0u);
}

TEST_F(EngineTest, AutomaticUpdateDetectionBetweenQueries) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto before = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->result.Row(0)[0], Value::Int64(1000));

  auto app = OpenAppendableFile(path_);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append("9999,north,1.5,1996-01-01\n").ok());
  ASSERT_TRUE((*app)->Close().ok());

  auto after = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.Row(0)[0], Value::Int64(1001));

  // Rewrite is also picked up automatically.
  ASSERT_TRUE(WriteStringToFile(path_, "1,x,2.0,1994-01-01\n").ok());
  auto rewritten = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->result.Row(0)[0], Value::Int64(1));
}

TEST_F(EngineTest, ReplaceTablePointsAtNewFile) {
  NoDbEngine engine(catalog_, SmallBlocks());
  ASSERT_TRUE(engine.Execute("SELECT COUNT(*) FROM sales").ok());
  std::string other = dir_->FilePath("other.csv");
  ASSERT_TRUE(WriteStringToFile(other, "7,west,3.5,1999-09-09\n").ok());
  ASSERT_TRUE(
      engine.ReplaceTable({"sales", other, schema_, CsvDialect()}).ok());
  auto result = engine.Execute("SELECT id FROM sales");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->result.num_rows(), 1u);
  EXPECT_EQ(result->result.Row(0)[0], Value::Int64(7));
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  NoDbEngine engine(catalog_, SmallBlocks());
  EXPECT_FALSE(engine.Execute("SELECT nope FROM sales").ok());
  EXPECT_FALSE(engine.Execute("SELECT id FROM missing_table").ok());
  EXPECT_FALSE(engine.Execute("garbage").ok());
  // The engine remains usable after errors.
  EXPECT_TRUE(engine.Execute("SELECT COUNT(*) FROM sales").ok());
}

TEST_F(EngineTest, ExplainShowsPlanAndAdaptiveReordering) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto plan = engine.Explain(
      "SELECT region FROM sales WHERE region LIKE 'n%' AND id < 5 "
      "ORDER BY region LIMIT 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Without statistics yet, pushed conjuncts keep source order. Both
  // WHERE conjuncts are single-table, so they run inside the scan.
  EXPECT_NE(plan->find("SCAN sales [id, region]"), std::string::npos)
      << *plan;
  size_t like_pos = plan->find("PUSHDOWN (region LIKE");
  size_t id_pos = plan->find("PUSHDOWN (id < 5)");
  ASSERT_NE(like_pos, std::string::npos) << *plan;
  ASSERT_NE(id_pos, std::string::npos) << *plan;
  EXPECT_LT(like_pos, id_pos);
  EXPECT_EQ(plan->find("FILTER"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("SORT by"), std::string::npos);
  EXPECT_NE(plan->find("LIMIT 3"), std::string::npos);

  // Run a query that gathers statistics on `id`, then re-explain: the
  // selective id predicate should now be ordered first.
  ASSERT_TRUE(
      engine.Execute("SELECT COUNT(*) FROM sales WHERE id >= 0").ok());
  auto adapted = engine.Explain(
      "SELECT region FROM sales WHERE region LIKE 'n%' AND id < 5 "
      "ORDER BY region LIMIT 3");
  ASSERT_TRUE(adapted.ok());
  size_t like2 = adapted->find("PUSHDOWN (region LIKE");
  size_t id2 = adapted->find("PUSHDOWN (id < 5)");
  ASSERT_NE(like2, std::string::npos) << *adapted;
  ASSERT_NE(id2, std::string::npos) << *adapted;
  EXPECT_LT(id2, like2) << *adapted;
  EXPECT_NE(adapted->find("selectivity"), std::string::npos) << *adapted;

  // With pushdown disabled the same conjuncts fall back to a filter
  // cascade above the scan.
  NoDbConfig no_push = SmallBlocks();
  no_push.enable_pushdown = false;
  NoDbEngine plain(catalog_, no_push);
  auto filtered = plain.Explain(
      "SELECT region FROM sales WHERE region LIKE 'n%' AND id < 5 "
      "ORDER BY region LIMIT 3");
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(filtered->find("FILTER (region LIKE"), std::string::npos)
      << *filtered;
  EXPECT_EQ(filtered->find("PUSHDOWN"), std::string::npos) << *filtered;
}

TEST_F(EngineTest, ExplainOnAggregateAndJoinPlans) {
  NoDbEngine engine(catalog_, SmallBlocks());
  auto agg = engine.Explain(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
      "ORDER BY n DESC");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_NE(agg->find("AGGREGATE groups=[region] aggs=[n]"),
            std::string::npos)
      << *agg;
  EXPECT_NE(agg->find("SORT by n DESC"), std::string::npos);
}

TEST_F(EngineTest, RuntimeComponentToggles) {
  NoDbEngine engine(catalog_, SmallBlocks());
  ASSERT_TRUE(engine.Execute("SELECT SUM(id) AS s FROM sales").ok());
  const RawTableState* state = engine.table_state("sales");
  size_t segments = state->cache().num_segments();
  ASSERT_GT(segments, 0u);

  // Disable everything: queries still answer, structures are ignored
  // and not grown.
  engine.SetPositionalMapEnabled(false);
  engine.SetCacheEnabled(false);
  engine.SetStatisticsEnabled(false);
  auto off = engine.Execute("SELECT SUM(amount) AS s FROM sales");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->metrics.scan.cache_block_hits, 0u);
  EXPECT_EQ(state->cache().num_segments(), segments);  // unchanged

  // Re-enable: the retained structures serve again immediately.
  engine.SetPositionalMapEnabled(true);
  engine.SetCacheEnabled(true);
  engine.SetStatisticsEnabled(true);
  auto on = engine.Execute("SELECT SUM(id) AS s FROM sales");
  ASSERT_TRUE(on.ok());
  EXPECT_GT(on->metrics.scan.cache_block_hits, 0u);
}

// --------------------------------------------------------- LoadFirstEngine

TEST_F(EngineTest, LoadFirstMustInitializeAndMatchesNoDb) {
  LoadFirstEngine conventional(catalog_, LoadProfile::kPostgres);
  EXPECT_FALSE(conventional.initialized());
  auto init = conventional.Initialize();
  ASSERT_TRUE(init.ok());
  EXPECT_GT(*init, 0);
  EXPECT_TRUE(conventional.initialized());
  EXPECT_GT(conventional.resident_bytes(), 0u);

  NoDbEngine insitu(catalog_, SmallBlocks());
  const char* queries[] = {
      "SELECT COUNT(*) FROM sales",
      "SELECT region, SUM(amount) AS s FROM sales GROUP BY region "
      "ORDER BY region",
      "SELECT id FROM sales WHERE amount > 90 ORDER BY id LIMIT 7",
  };
  for (const char* sql : queries) {
    auto a = conventional.Execute(sql);
    auto b = insitu.Execute(sql);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->result.CanonicalRows(), b->result.CanonicalRows())
        << sql;
  }
}

TEST_F(EngineTest, ExecuteAutoInitializes) {
  LoadFirstEngine engine(catalog_, LoadProfile::kPostgres);
  auto result = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(engine.initialized());
  EXPECT_GT(engine.totals().init_ns, 0);
}

TEST_F(EngineTest, ProfilesDoIncreasingInitWork) {
  LoadFirstEngine pg(catalog_, LoadProfile::kPostgres);
  LoadFirstEngine my(catalog_, LoadProfile::kMySql);
  LoadFirstEngine dx(catalog_, LoadProfile::kDbmsX);
  ASSERT_TRUE(pg.Initialize().ok());
  ASSERT_TRUE(my.Initialize().ok());
  ASSERT_TRUE(dx.Initialize().ok());
  EXPECT_EQ(pg.name(), "PostgreSQL");
  EXPECT_EQ(my.name(), "MySQL");
  EXPECT_EQ(dx.name(), "DBMS X");
  // The MySQL profile keeps a row-store copy resident.
  EXPECT_GT(my.resident_bytes(), pg.resident_bytes());
  // All three agree on results.
  const char* sql = "SELECT SUM(id) AS s FROM sales WHERE amount < 50";
  auto a = pg.Execute(sql);
  auto b = my.Execute(sql);
  auto c = dx.Execute(sql);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->result.CanonicalRows(), b->result.CanonicalRows());
  EXPECT_EQ(a->result.CanonicalRows(), c->result.CanonicalRows());
}

}  // namespace
}  // namespace nodb
