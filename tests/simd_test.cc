// Differential fuzz suite for the SIMD structural-parsing layer: every
// kernel tier must agree with the scalar reference bit-for-bit — on
// random buffers, on random slab splits (multi-byte structures landing
// across boundaries), through the tokenizer, and end-to-end through the
// engine at several thread counts. The scalar kernels are the oracle;
// the SIMD tiers are pure accelerators, exactly like the NoDB
// structures themselves.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "csv/dialect.h"
#include "csv/tokenizer.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "simd/simd.h"
#include "simd/structural_index.h"
#include "util/random.h"

namespace nodb {
namespace {

using simd::SimdLevel;

/// Every tier the running CPU can execute (always includes scalar).
std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel level :
       {SimdLevel::kSSE2, SimdLevel::kNEON, SimdLevel::kAVX2}) {
    if (simd::LevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

/// Random buffer dense in structural bytes (delimiters, newlines,
/// quotes, CR) so position lists are long and block masks are busy.
std::string RandomStructuralBuffer(Random* rng, size_t size, char delim,
                                   char quote) {
  std::string out;
  out.reserve(size);
  const char specials[] = {delim, '\n', quote, '\r'};
  for (size_t i = 0; i < size; ++i) {
    if (rng->Bernoulli(0.3)) {
      out.push_back(specials[rng->Uniform(4)]);
    } else {
      out.push_back(static_cast<char>('a' + rng->Uniform(26)));
    }
  }
  return out;
}

TEST(SimdDispatch, DetectionAndForcing) {
  const SimdLevel detected = simd::DetectedLevel();
  EXPECT_TRUE(simd::LevelAvailable(detected));
  EXPECT_TRUE(simd::LevelAvailable(SimdLevel::kScalar));
  EXPECT_EQ(simd::ActiveLevel(), detected);

  EXPECT_EQ(simd::ForceLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), SimdLevel::kScalar);
  EXPECT_EQ(simd::LevelFor(true), SimdLevel::kScalar);
  EXPECT_EQ(simd::LevelFor(false), SimdLevel::kScalar);

  // Forcing always lands on a runnable tier, whatever was asked for.
  for (SimdLevel level : {SimdLevel::kSSE2, SimdLevel::kNEON,
                          SimdLevel::kAVX2, SimdLevel::kScalar}) {
    EXPECT_TRUE(simd::LevelAvailable(simd::ForceLevel(level)));
  }

  simd::ClearForcedLevel();
  EXPECT_EQ(simd::ActiveLevel(), detected);
  EXPECT_STRNE(simd::LevelName(detected), "unknown");
}

TEST(SimdKernels, ClassifyMatchesBlockOracleAtEverySizeAndLevel) {
  Random rng(2024);
  // Sizes straddling every kernel boundary: empty, sub-block, exactly
  // one block, one byte either side, multi-block plus tail.
  const size_t sizes[] = {0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                          127, 128, 129, 255, 256, 300};
  for (size_t size : sizes) {
    const std::string buffer = RandomStructuralBuffer(&rng, size, '|', '"');
    // Oracle: the 64-byte reference classifier, block by block.
    std::vector<uint32_t> want_delims;
    std::vector<uint32_t> want_newlines;
    std::vector<uint32_t> want_quotes;
    for (size_t base = 0; base < size; base += 64) {
      const size_t len = std::min<size_t>(64, size - base);
      simd::BlockMasks masks =
          simd::ClassifyBlockScalar(buffer.data() + base, len, '|', '"');
      for (size_t i = 0; i < len; ++i) {
        const uint32_t pos = static_cast<uint32_t>(base + i);
        if (masks.delim >> i & 1) want_delims.push_back(pos);
        if (masks.newline >> i & 1) want_newlines.push_back(pos);
        if (masks.quote >> i & 1) want_quotes.push_back(pos);
      }
    }
    for (SimdLevel level : RunnableLevels()) {
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " size " +
                   std::to_string(size));
      std::vector<uint32_t> delims;
      std::vector<uint32_t> newlines;
      std::vector<uint32_t> quotes;
      simd::ClassifyBuffer(level, buffer.data(), size, /*base=*/0, '|', '"',
                           &delims, &newlines, &quotes);
      EXPECT_EQ(delims, want_delims);
      EXPECT_EQ(newlines, want_newlines);
      EXPECT_EQ(quotes, want_quotes);

      // Null sinks skip a class without disturbing the others.
      std::vector<uint32_t> newlines_only;
      simd::ClassifyBuffer(level, buffer.data(), size, /*base=*/0, '|', '"',
                           nullptr, &newlines_only, nullptr);
      EXPECT_EQ(newlines_only, want_newlines);
    }
  }
}

TEST(SimdKernels, FindBytePositionsMatchesScalarOnRandomCalls) {
  Random rng(7);
  for (int round = 0; round < 300; ++round) {
    const size_t size = rng.Uniform(200);
    const std::string buffer = RandomStructuralBuffer(&rng, size, ',', '"');
    const size_t from = rng.Uniform(size + 2);
    const size_t max_hits = rng.Uniform(20);
    const uint32_t bias = static_cast<uint32_t>(rng.Uniform(2));
    std::vector<uint32_t> want(max_hits + 1, 0xDEADu);
    const size_t want_n =
        simd::FindBytePositions(SimdLevel::kScalar, buffer.data(), size,
                                from, ',', max_hits, bias, want.data());
    for (SimdLevel level : RunnableLevels()) {
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " round " +
                   std::to_string(round));
      std::vector<uint32_t> got(max_hits + 1, 0xDEADu);
      const size_t got_n =
          simd::FindBytePositions(level, buffer.data(), size, from, ',',
                                  max_hits, bias, got.data());
      ASSERT_EQ(got_n, want_n);
      EXPECT_EQ(got, want);  // including the untouched sentinel slots
    }
  }
}

TEST(SimdStructuralIndex, RandomSlabSplitsConcatenateExactly) {
  Random rng(99);
  const CsvDialect dialect = CsvDialect::QuotedCsv();
  for (int round = 0; round < 60; ++round) {
    const size_t size = 1 + rng.Uniform(600);
    const std::string buffer =
        RandomStructuralBuffer(&rng, size, dialect.delimiter, dialect.quote);

    simd::StructuralIndexer scalar_indexer(dialect, SimdLevel::kScalar);
    simd::StructuralIndex whole;
    scalar_indexer.Index(buffer.data(), size, /*base=*/0, &whole);

    for (SimdLevel level : RunnableLevels()) {
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " round " +
                   std::to_string(round));
      // Split the buffer at random points; indexing the pieces and
      // rebasing must reproduce the whole-buffer index exactly — the
      // position lists are stateless, so splits cannot hide drift even
      // when they land inside "\r\n" or a doubled quote.
      simd::StructuralIndexer indexer(dialect, level);
      simd::StructuralIndex piece;
      std::vector<uint32_t> delims;
      std::vector<uint32_t> newlines;
      std::vector<uint32_t> quotes;
      size_t offset = 0;
      while (offset < size) {
        const size_t piece_size =
            std::min<size_t>(1 + rng.Uniform(97), size - offset);
        indexer.Index(buffer.data() + offset, piece_size, offset, &piece);
        EXPECT_EQ(piece.base, offset);
        for (uint32_t pos : piece.delims) {
          delims.push_back(pos + static_cast<uint32_t>(offset));
        }
        for (uint32_t pos : piece.newlines) {
          newlines.push_back(pos + static_cast<uint32_t>(offset));
        }
        for (uint32_t pos : piece.quotes) {
          quotes.push_back(pos + static_cast<uint32_t>(offset));
        }
        offset += piece_size;
      }
      EXPECT_EQ(delims, whole.delims);
      EXPECT_EQ(newlines, whole.newlines);
      EXPECT_EQ(quotes, whole.quotes);
    }
  }
}

TEST(SimdStructuralIndex, FieldStartsMatchScanStartsOnRandomRows) {
  Random rng(31337);
  const CsvDialect dialect;  // comma, quoting off
  const CsvTokenizer tokenizer(dialect, SimdLevel::kScalar);
  for (int round = 0; round < 200; ++round) {
    // A slab of several rows, walked with one monotone delimiter
    // cursor — the exact stage-2 access pattern of ScanChunk.
    std::string slab;
    std::vector<std::pair<uint32_t, uint32_t>> rows;  // [start, end)
    const int num_rows = 1 + static_cast<int>(rng.Uniform(8));
    for (int r = 0; r < num_rows; ++r) {
      const uint32_t start = static_cast<uint32_t>(slab.size());
      const size_t len = rng.Uniform(40);
      for (size_t i = 0; i < len; ++i) {
        slab.push_back(rng.Bernoulli(0.25)
                           ? ','
                           : static_cast<char>('a' + rng.Uniform(26)));
      }
      if (rng.Bernoulli(0.3)) slab.push_back('\r');
      rows.emplace_back(start, static_cast<uint32_t>(slab.size()));
      slab.push_back('\n');
    }

    simd::StructuralIndexer indexer(dialect, SimdLevel::kScalar);
    simd::StructuralIndex index;
    indexer.Index(slab.data(), slab.size(), 0, &index);

    const uint32_t until_field = 1 + static_cast<uint32_t>(rng.Uniform(8));
    size_t delim_cursor = 0;
    for (auto [start, end] : rows) {
      SCOPED_TRACE("round " + std::to_string(round) + " row at " +
                   std::to_string(start));
      const Slice line(slab.data() + start, end - start);
      std::vector<uint32_t> want(until_field + 2, 0xDEADu);
      const uint32_t want_high =
          tokenizer.ScanStarts(line, 0, 0, until_field, want.data());

      uint32_t stripped = static_cast<uint32_t>(line.size());
      if (stripped > 0 && line[stripped - 1] == '\r') --stripped;
      std::vector<uint32_t> got(until_field + 2, 0xDEADu);
      const uint32_t got_high = simd::StructuralFieldStarts(
          index.delims, &delim_cursor, start, start + stripped, until_field,
          got.data());

      ASSERT_EQ(got_high, want_high);
      for (uint32_t i = 0; i <= want_high; ++i) {
        EXPECT_EQ(got[i], want[i]) << "starts[" << i << "]";
      }
    }
  }
}

TEST(SimdTokenizer, ScanStartsIdenticalAcrossLevelsOnRandomLines) {
  Random rng(555);
  for (const char delim : {',', '|'}) {
    CsvDialect dialect;
    dialect.delimiter = delim;
    std::vector<CsvTokenizer> tokenizers;
    for (SimdLevel level : RunnableLevels()) {
      tokenizers.emplace_back(dialect, level);
    }
    for (int round = 0; round < 400; ++round) {
      std::string line;
      const size_t len = rng.Uniform(120);
      for (size_t i = 0; i < len; ++i) {
        if (rng.Bernoulli(0.2)) {
          line.push_back(delim);
        } else {
          line.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
      }
      if (rng.Bernoulli(0.25)) line.push_back('\r');

      // Full tokenize plus a random incremental resume — both must be
      // invariant across tiers.
      std::vector<uint32_t> want_starts;
      const uint32_t want_count =
          tokenizers[0].TokenizeLine(line, &want_starts);
      const uint32_t from_field = static_cast<uint32_t>(
          rng.Uniform(want_count + 1));
      const uint32_t until_field =
          from_field + static_cast<uint32_t>(rng.Uniform(6));
      std::vector<uint32_t> want_resume(until_field + 2, 0xDEADu);
      const uint32_t want_high = tokenizers[0].ScanStarts(
          line, from_field, want_starts[from_field], until_field,
          want_resume.data());

      for (size_t t = 1; t < tokenizers.size(); ++t) {
        SCOPED_TRACE(std::string(simd::LevelName(tokenizers[t].level())) +
                     " round " + std::to_string(round));
        std::vector<uint32_t> starts;
        ASSERT_EQ(tokenizers[t].TokenizeLine(line, &starts), want_count);
        EXPECT_EQ(starts, want_starts);
        std::vector<uint32_t> resume(until_field + 2, 0xDEADu);
        ASSERT_EQ(tokenizers[t].ScanStarts(line, from_field,
                                           want_starts[from_field],
                                           until_field, resume.data()),
                  want_high);
        EXPECT_EQ(resume, want_resume);
      }
    }
  }
}

// ------------------------------------------------------------- end to end

struct EndToEndCase {
  const char* name;
  bool quoting;
  bool crlf;
  char delimiter;
};

class SimdEngineDifferential
    : public ::testing::TestWithParam<EndToEndCase> {};

/// Random file in the given dialect: ints, strings (with embedded
/// delimiters/quotes when quoting), doubles, occasional empty fields.
std::string MakeRandomCsv(Random* rng, const EndToEndCase& dialect_case,
                          int rows) {
  std::string content;
  const std::string eol = dialect_case.crlf ? "\r\n" : "\n";
  const char d = dialect_case.delimiter;
  for (int i = 0; i < rows; ++i) {
    content += std::to_string(i);
    content += d;
    if (rng->Bernoulli(0.1)) {
      // empty string field
    } else if (dialect_case.quoting && rng->Bernoulli(0.4)) {
      content += '"';
      content += "v";
      content += d;                        // embedded delimiter
      content += std::to_string(i % 5);
      if (rng->Bernoulli(0.5)) content += "\"\"q";  // escaped quote
      content += '"';
    } else {
      content += "v" + std::to_string(i % 7);
    }
    content += d;
    content += std::to_string(i) + "." + std::to_string(rng->Uniform(100));
    content += eol;
  }
  return content;
}

TEST_P(SimdEngineDifferential, ByteIdenticalResultsAcrossLevelsAndThreads) {
  const EndToEndCase param = GetParam();
  auto dir = TempDir::Create("nodb-simd-e2e");
  ASSERT_TRUE(dir.ok());

  Random rng(4242);
  const std::string content = MakeRandomCsv(&rng, param, 300);
  const std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  CsvDialect dialect;
  dialect.delimiter = param.delimiter;
  dialect.allow_quoting = param.quoting;
  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"grp", DataType::kString},
                              {"x", DataType::kDouble}});
  ASSERT_TRUE(catalog.RegisterTable({"t", path, schema, dialect}).ok());

  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  const char* queries[] = {
      "SELECT COUNT(*) AS n FROM t",
      "SELECT grp, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY grp "
      "ORDER BY grp",
      "SELECT id, grp, x FROM t WHERE x > 100 ORDER BY id LIMIT 25",
      "SELECT id FROM t WHERE id >= 10 AND id < 50 ORDER BY id",
  };

  for (const char* sql : queries) {
    auto expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    const auto want = expected->result.CanonicalRows();
    for (const bool enable_simd : {false, true}) {
      for (const uint32_t threads : {1u, 2u, 8u}) {
        // Tiny read buffers force many slabs per chunk, landing rows,
        // CRLF pairs and quoted fields across slab boundaries.
        for (const size_t read_buffer : {size_t{16}, size_t{1} << 20}) {
          SCOPED_TRACE(std::string(sql) + " simd=" +
                       std::to_string(enable_simd) + " threads=" +
                       std::to_string(threads) + " buf=" +
                       std::to_string(read_buffer));
          NoDbConfig config;
          config.enable_simd = enable_simd;
          config.num_threads = threads;
          config.rows_per_block = 64;
          config.read_buffer_bytes = read_buffer;
          NoDbEngine nodb(catalog, config);
          auto cold = nodb.Execute(sql);
          ASSERT_TRUE(cold.ok()) << cold.status().ToString();
          EXPECT_EQ(cold->result.CanonicalRows(), want);
          auto warm = nodb.Execute(sql);
          ASSERT_TRUE(warm.ok()) << warm.status().ToString();
          EXPECT_EQ(warm->result.CanonicalRows(), want);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dialects, SimdEngineDifferential,
    ::testing::Values(EndToEndCase{"comma_lf", false, false, ','},
                      EndToEndCase{"comma_crlf", false, true, ','},
                      EndToEndCase{"pipe_lf", false, false, '|'},
                      EndToEndCase{"quoted_lf", true, false, ','},
                      EndToEndCase{"quoted_crlf", true, true, ','}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return info.param.name;
    });

TEST(SimdEngineDifferential, MalformedFileFailsIdenticallyAtEveryLevel) {
  auto dir = TempDir::Create("nodb-simd-err");
  ASSERT_TRUE(dir.ok());
  // Row 2 is short: tokenizing attribute 2 must fail with the same
  // message whichever kernels found the boundaries.
  const std::string path = dir->FilePath("bad.csv");
  ASSERT_TRUE(
      WriteStringToFile(path, "1,a,1.5\n2,b,2.5\n3,c\n4,d,4.5\n").ok());
  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"grp", DataType::kString},
                              {"x", DataType::kDouble}});
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  std::string scalar_message;
  for (const bool enable_simd : {false, true}) {
    for (const uint32_t threads : {1u, 2u, 8u}) {
      NoDbConfig config;
      config.enable_simd = enable_simd;
      config.num_threads = threads;
      NoDbEngine nodb(catalog, config);
      auto out = nodb.Execute("SELECT SUM(x) AS s FROM t");
      ASSERT_FALSE(out.ok());
      if (scalar_message.empty()) {
        scalar_message = out.status().ToString();
      } else {
        EXPECT_EQ(out.status().ToString(), scalar_message)
            << "simd=" << enable_simd << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace nodb
