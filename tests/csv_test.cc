// Unit and property tests for the CSV machinery: tokenizer (including
// the incremental ScanStarts contract the positional map relies on),
// field decoding, value parsing and the writer.

#include <gtest/gtest.h>

#include <charconv>
#include <clocale>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "csv/csv_writer.h"
#include "csv/dialect.h"
#include "csv/tokenizer.h"
#include "csv/value_parser.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "util/random.h"
#include "util/string_util.h"

namespace nodb {
namespace {

/// Reference splitter: straightforward, obviously-correct field
/// extraction honoring quoting. Property tests compare the production
/// tokenizer against this.
std::vector<std::string> ReferenceSplit(const std::string& line,
                                        const CsvDialect& d) {
  std::vector<std::string> fields;
  std::string cur;
  size_t i = 0;
  while (true) {
    if (d.allow_quoting && i < line.size() && line[i] == d.quote) {
      ++i;
      while (i < line.size()) {
        if (line[i] == d.quote) {
          if (i + 1 < line.size() && line[i + 1] == d.quote) {
            cur.push_back(d.quote);
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          cur.push_back(line[i++]);
        }
      }
      // Trailing garbage after the closing quote is kept verbatim.
      while (i < line.size() && line[i] != d.delimiter) cur.push_back(line[i++]);
    } else {
      while (i < line.size() && line[i] != d.delimiter) cur.push_back(line[i++]);
    }
    fields.push_back(cur);
    cur.clear();
    if (i >= line.size()) break;
    ++i;  // skip delimiter
  }
  return fields;
}

/// Extracts field `f` using the production tokenizer's span convention.
std::string TokenizedField(const CsvTokenizer& tok, const std::string& line,
                           const std::vector<uint32_t>& starts, size_t f,
                           std::string* scratch) {
  Slice raw = CsvTokenizer::RawField(line, starts[f], starts[f + 1]);
  return tok.DecodeField(raw, scratch).ToString();
}

TEST(TokenizerTest, SimpleCommaLine) {
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  uint32_t n = tok.TokenizeLine("a,bb,ccc", &starts);
  ASSERT_EQ(n, 3u);
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 2u);
  EXPECT_EQ(starts[2], 5u);
  EXPECT_EQ(starts[3], 9u);  // virtual: line size + 1
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, "a,bb,ccc", starts, 0, &scratch), "a");
  EXPECT_EQ(TokenizedField(tok, "a,bb,ccc", starts, 1, &scratch), "bb");
  EXPECT_EQ(TokenizedField(tok, "a,bb,ccc", starts, 2, &scratch), "ccc");
}

TEST(TokenizerTest, EmptyFieldsPreserved) {
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  EXPECT_EQ(tok.TokenizeLine(",,", &starts), 3u);
  EXPECT_EQ(tok.TokenizeLine("", &starts), 1u);
  std::string scratch;
  tok.TokenizeLine("a,,b", &starts);
  EXPECT_EQ(TokenizedField(tok, "a,,b", starts, 1, &scratch), "");
}

TEST(TokenizerTest, SelectiveScanStopsAtRequestedField) {
  CsvTokenizer tok{CsvDialect()};
  std::string line = "0,1,2,3,4,5,6,7,8,9";
  std::vector<uint32_t> starts(12);
  // Ask for the start of field 4 only (enough to slice field 3).
  uint32_t high = tok.ScanStarts(line, 0, 0, 4, starts.data());
  EXPECT_EQ(high, 4u);
  EXPECT_EQ(starts[3], 6u);
  EXPECT_EQ(starts[4], 8u);
}

TEST(TokenizerTest, ScanResumesFromMidRowAnchor) {
  CsvTokenizer tok{CsvDialect()};
  std::string line = "aaa,bb,c,dddd,ee";
  // Caller knows field 2 starts at offset 7 (a positional-map anchor).
  std::vector<uint32_t> starts(8);
  uint32_t high = tok.ScanStarts(line, 2, 7, 4, starts.data());
  EXPECT_EQ(high, 4u);
  EXPECT_EQ(starts[2], 7u);
  EXPECT_EQ(starts[3], 9u);
  EXPECT_EQ(starts[4], 14u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 3, &scratch), "dddd");
}

TEST(TokenizerTest, ExhaustedLineReportsFieldCount) {
  CsvTokenizer tok{CsvDialect()};
  std::string line = "x,y";
  std::vector<uint32_t> starts(10);
  uint32_t high = tok.ScanStarts(line, 0, 0, 7, starts.data());
  EXPECT_EQ(high, 2u);  // only two fields exist
  EXPECT_EQ(starts[2], line.size() + 1);
}

TEST(TokenizerTest, QuotedFieldWithEmbeddedDelimiter) {
  CsvTokenizer tok{CsvDialect::QuotedCsv()};
  std::string line = "a,\"x,y\",b";
  std::vector<uint32_t> starts;
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 3u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 1, &scratch), "x,y");
  EXPECT_EQ(TokenizedField(tok, line, starts, 2, &scratch), "b");
}

TEST(TokenizerTest, QuotedFieldWithEscapedQuotes) {
  CsvTokenizer tok{CsvDialect::QuotedCsv()};
  std::string line = "\"he said \"\"hi\"\"\",2";
  std::vector<uint32_t> starts;
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 2u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 0, &scratch),
            "he said \"hi\"");
}

TEST(TokenizerTest, TrailingCarriageReturnIsNotData) {
  // Regression: CRLF files used to leak '\r' into the last field of
  // every record, corrupting strings and failing numeric parses.
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  std::string line = "12,34\r";
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 2u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 0, &scratch), "12");
  EXPECT_EQ(TokenizedField(tok, line, starts, 1, &scratch), "34");
  EXPECT_TRUE(ValueParser::ParseInt64(
                  CsvTokenizer::RawField(line, starts[1], starts[2]))
                  .ok());
}

TEST(TokenizerTest, CarriageReturnOnlyRecordIsOneEmptyField) {
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  ASSERT_EQ(tok.TokenizeLine("\r", &starts), 1u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, "\r", starts, 0, &scratch), "");
}

TEST(TokenizerTest, OnlyOneCarriageReturnIsTerminator) {
  // "a\r\r\n" on disk is the record "a\r\r": exactly one '\r' belongs
  // to the line ending; the one before it is field data. Guards
  // against double-trimming across layers.
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  std::string line = "a\r\r";
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 1u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 0, &scratch), "a\r");
}

TEST(TokenizerTest, CrlfWithSelectiveScan) {
  CsvTokenizer tok{CsvDialect()};
  std::string line = "a,b,c\r";
  std::vector<uint32_t> starts(8);
  // Incremental request for the final field still excludes the '\r'.
  uint32_t high = tok.ScanStarts(line, 0, 0, 3, starts.data());
  EXPECT_EQ(high, 3u);
  EXPECT_EQ(starts[2], 4u);
  EXPECT_EQ(starts[3], 6u);  // virtual: CR-trimmed size + 1
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 2, &scratch), "c");
  // Interior carriage returns are data, not line endings.
  std::vector<uint32_t> all;
  ASSERT_EQ(tok.TokenizeLine("x\ry,z", &all), 2u);
  EXPECT_EQ(TokenizedField(tok, "x\ry,z", all, 0, &scratch), "x\ry");
}

TEST(TokenizerTest, CrlfQuotedDialect) {
  CsvTokenizer tok{CsvDialect::QuotedCsv()};
  std::vector<uint32_t> starts;
  std::string line = "1,\"a,b\"\r";
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 2u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 1, &scratch), "a,b");
}

TEST(TokenizerTest, QuotingDisabledTreatsQuoteAsData) {
  CsvTokenizer tok{CsvDialect()};  // allow_quoting = false
  std::string line = "\"a,b\"";
  std::vector<uint32_t> starts;
  ASSERT_EQ(tok.TokenizeLine(line, &starts), 2u);
  std::string scratch;
  EXPECT_EQ(TokenizedField(tok, line, starts, 0, &scratch), "\"a");
}

/// Property sweep: tokenizer vs. the reference splitter over random
/// lines in several dialects.
struct DialectCase {
  char delimiter;
  bool quoting;
};

class TokenizerProperty : public ::testing::TestWithParam<DialectCase> {};

TEST_P(TokenizerProperty, MatchesReferenceOnRandomLines) {
  DialectCase param = GetParam();
  CsvDialect dialect;
  dialect.delimiter = param.delimiter;
  dialect.allow_quoting = param.quoting;
  CsvTokenizer tok(dialect);
  Random rng(static_cast<uint64_t>(param.delimiter) * 31 + param.quoting);

  for (int iter = 0; iter < 300; ++iter) {
    // Build a line from random fields; write them with proper quoting.
    size_t nfields = 1 + rng.Uniform(8);
    std::vector<std::string> fields;
    std::string line;
    for (size_t f = 0; f < nfields; ++f) {
      std::string field;
      size_t len = rng.Uniform(12);
      for (size_t i = 0; i < len; ++i) {
        // Bias towards tricky characters.
        switch (rng.Uniform(6)) {
          case 0:
            field.push_back(param.quoting ? param.delimiter : 'd');
            break;
          case 1:
            field.push_back(param.quoting ? '"' : 'q');
            break;
          default:
            field.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
      }
      fields.push_back(field);
      if (f > 0) line.push_back(param.delimiter);
      bool needs_quote =
          param.quoting &&
          (field.find(param.delimiter) != std::string::npos ||
           field.find('"') != std::string::npos);
      if (needs_quote) {
        line.push_back('"');
        for (char c : field) {
          line.push_back(c);
          if (c == '"') line.push_back('"');
        }
        line.push_back('"');
      } else {
        line += field;
      }
    }

    auto expected = ReferenceSplit(line, dialect);
    std::vector<uint32_t> starts;
    uint32_t n = tok.TokenizeLine(line, &starts);
    ASSERT_EQ(n, expected.size()) << "line: " << line;
    std::string scratch;
    for (size_t f = 0; f < n; ++f) {
      EXPECT_EQ(TokenizedField(tok, line, starts, f, &scratch),
                expected[f])
          << "line: " << line << " field " << f;
    }
    // Incremental scans agree with the full tokenize at every anchor.
    for (size_t f = 0; f + 1 < n; ++f) {
      std::vector<uint32_t> partial(starts.size() + 2);
      uint32_t high = tok.ScanStarts(line, static_cast<uint32_t>(f),
                                     starts[f],
                                     static_cast<uint32_t>(n),
                                     partial.data());
      ASSERT_EQ(high, n);
      for (size_t g = f; g <= n; ++g) {
        EXPECT_EQ(partial[g], starts[g]) << "anchor " << f << " field " << g;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dialects, TokenizerProperty,
    ::testing::Values(DialectCase{',', false}, DialectCase{'|', false},
                      DialectCase{'\t', false}, DialectCase{',', true},
                      DialectCase{';', true}));

// ------------------------------------------------------------- ValueParser

TEST(ValueParserTest, Integers) {
  EXPECT_EQ(*ValueParser::ParseInt64("42"), 42);
  EXPECT_EQ(*ValueParser::ParseInt64("-7"), -7);
  EXPECT_EQ(*ValueParser::ParseInt64("0001"), 1);
  EXPECT_FALSE(ValueParser::ParseInt64("").ok());
  EXPECT_FALSE(ValueParser::ParseInt64("4x").ok());
  EXPECT_FALSE(ValueParser::ParseInt64("4.5").ok());
  EXPECT_FALSE(ValueParser::ParseInt64(" 4").ok());
  EXPECT_FALSE(
      ValueParser::ParseInt64("99999999999999999999").ok());  // overflow
}

TEST(ValueParserTest, Doubles) {
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("7"), 7.0);
  EXPECT_FALSE(ValueParser::ParseDouble("abc").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("1.5x").ok());
}

TEST(ValueParserTest, LeadingPlusSignAccepted) {
  // Regression: std::from_chars rejects an explicit '+', so "+3.5" in
  // a numeric column used to hard-fail the load.
  EXPECT_EQ(*ValueParser::ParseInt64("+42"), 42);
  EXPECT_EQ(*ValueParser::ParseInt64("+0"), 0);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("+3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("+.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("+2e3"), 2000.0);
  // The plus must introduce a number, not another sign or nothing.
  EXPECT_FALSE(ValueParser::ParseInt64("+").ok());
  EXPECT_FALSE(ValueParser::ParseInt64("+-3").ok());
  EXPECT_FALSE(ValueParser::ParseInt64("++1").ok());
  EXPECT_FALSE(ValueParser::ParseInt64(" +4").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("+").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("+-3.5").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("+x").ok());
}

// The branchless fast paths (SWAR integers, Clinger decimals) must be
// indistinguishable from the pre-fast-path parser — the differential
// reference below is exactly what it did: strip the documented leading
// '+' extension, then hand everything to std::from_chars.

Slice ReferenceStripPlus(Slice text) {
  if (text.size() >= 2 && text[0] == '+' && text[1] != '+' &&
      text[1] != '-') {
    text.RemovePrefix(1);
  }
  return text;
}

Result<int64_t> FromCharsInt64(Slice raw) {
  const Slice text = ReferenceStripPlus(raw);
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("reference reject");
  }
  return value;
}

Result<double> FromCharsDouble(Slice raw) {
  const Slice text = ReferenceStripPlus(raw);
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("reference reject");
  }
  return value;
}

void ExpectInt64MatchesReference(const std::string& text) {
  auto got = ValueParser::ParseInt64(text);
  auto want = FromCharsInt64(text);
  ASSERT_EQ(got.ok(), want.ok()) << "'" << text << "'";
  if (got.ok()) {
    EXPECT_EQ(*got, *want) << "'" << text << "'";
  }
}

void ExpectDoubleMatchesReference(const std::string& text) {
  auto got = ValueParser::ParseDouble(text);
  auto want = FromCharsDouble(text);
  ASSERT_EQ(got.ok(), want.ok()) << "'" << text << "'";
  if (got.ok()) {
    // Bit-identical, not just close: memcmp through uint64 views so
    // -0.0 vs 0.0 and NaN payloads count as differences.
    uint64_t got_bits = 0;
    uint64_t want_bits = 0;
    std::memcpy(&got_bits, &*got, sizeof(got_bits));
    std::memcpy(&want_bits, &*want, sizeof(want_bits));
    EXPECT_EQ(got_bits, want_bits) << "'" << text << "'";
  }
}

TEST(ValueParserTest, FastPathsMatchFromCharsOnEdgeCorpus) {
  const char* corpus[] = {
      "0", "-0", "7", "-7", "00000001", "12345678", "123456789",
      "999999999999999999",    // 18 digits, fast-path ceiling
      "1234567890123456789",   // 19 digits, slow path, fits
      "9223372036854775807",   // INT64_MAX
      "-9223372036854775808",  // INT64_MIN
      "9223372036854775808",   // overflow by one
      "18446744073709551616", "1234567x", "12345678x", "x2345678", "--1",
      "1-", "", "-", ".", "-.", "3.", ".5", "-.5", "3.14", "-0.0", "0.3",
      "1.050", "0.1", "2.675",
      "9007199254740992",      // 2^53, largest exact mantissa
      "9007199254740993",      // 2^53+1, must take the slow path
      "9007199254740992.0", "9007199254740993.5",
      "0.0000000000000000000001",  // 22 fraction digits
      "1e3", "-2e3", "2E-5", "1.5e300", "1.5e-300", "1e999", "-1e999",
      "inf", "INF", "infinity", "-inf", "nan", "NaN", "-nan", "nan(2)",
      "0x10", "1.2.3", "1..2", "1,5", " 1", "1 ",
  };
  for (const char* text : corpus) {
    ExpectInt64MatchesReference(text);
    ExpectDoubleMatchesReference(text);
  }
}

TEST(ValueParserTest, FastPathsMatchFromCharsOnRandomInputs) {
  Random rng(271828);
  const char alphabet[] = "0123456789.-+eE";
  for (int round = 0; round < 5000; ++round) {
    std::string text;
    const size_t len = rng.Uniform(26);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    ExpectInt64MatchesReference(text);
    ExpectDoubleMatchesReference(text);
  }
}

TEST(ValueParserTest, RandomValuesRoundTripExactly) {
  Random rng(161803);
  for (int round = 0; round < 2000; ++round) {
    const int64_t value = static_cast<int64_t>(rng.NextUint64());
    EXPECT_EQ(*ValueParser::ParseInt64(std::to_string(value)), value);
  }
  for (int round = 0; round < 2000; ++round) {
    // Decimal strings of the shape the fast path targets.
    const int64_t whole = rng.UniformRange(-999999, 999999);
    const uint64_t frac = rng.Uniform(10000);
    const double value = static_cast<double>(whole) +
                         (whole < 0 ? -1.0 : 1.0) *
                             static_cast<double>(frac) / 10000.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble(buf), value) << buf;
    ExpectDoubleMatchesReference(buf);
  }
}

TEST(ValueParserTest, ExponentInfNanSpellingsRoundTrip) {
  // Exponent forms always take the from_chars path; these pin the
  // values (and the rejections) the fast path must never intercept.
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("1.5e2"), 150.0);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("-1.5E-2"), -0.015);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("+1e0"), 1.0);
  EXPECT_TRUE(std::isinf(*ValueParser::ParseDouble("inf")));
  EXPECT_TRUE(std::isinf(*ValueParser::ParseDouble("-INF")));
  EXPECT_TRUE(std::isinf(*ValueParser::ParseDouble("infinity")));
  EXPECT_TRUE(std::isnan(*ValueParser::ParseDouble("nan")));
  EXPECT_TRUE(std::isnan(*ValueParser::ParseDouble("-NaN")));
  EXPECT_FALSE(ValueParser::ParseDouble("in").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("nane").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("1e").ok());
  // A finite spelling whose value overflows is a rejection (ERANGE from
  // from_chars), never a silent infinity.
  EXPECT_FALSE(ValueParser::ParseDouble("1e999").ok());
  EXPECT_FALSE(ValueParser::ParseDouble("-1e999").ok());
}

TEST(ValueParserTest, LocaleIndependentDecimalPoint) {
  // A comma-decimal locale must not change what parses: both the
  // branchless path and std::from_chars are locale-independent by
  // construction (the very reason from_chars backs this parser).
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const bool have_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "de_DE") != nullptr;
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("1234.875"), 1234.875);
  EXPECT_DOUBLE_EQ(*ValueParser::ParseDouble("-2.5e3"), -2500.0);
  EXPECT_FALSE(ValueParser::ParseDouble("1,5").ok());
  std::setlocale(LC_NUMERIC, saved.c_str());
  if (!have_locale) {
    GTEST_LOG_(INFO) << "no de_DE locale installed; ran under "
                     << saved;
  }
}

TEST(ValueParserTest, ParseIntoHandlesNullsAndTypes) {
  ColumnVector ints(DataType::kInt64);
  ASSERT_TRUE(ValueParser::ParseInto("5", DataType::kInt64, &ints).ok());
  ASSERT_TRUE(ValueParser::ParseInto("", DataType::kInt64, &ints).ok());
  EXPECT_EQ(ints.GetInt64(0), 5);
  EXPECT_TRUE(ints.IsNull(1));

  ColumnVector dates(DataType::kDate);
  ASSERT_TRUE(
      ValueParser::ParseInto("1994-02-01", DataType::kDate, &dates).ok());
  EXPECT_EQ(dates.GetValue(0).ToString(), "1994-02-01");
  EXPECT_FALSE(
      ValueParser::ParseInto("not-a-date", DataType::kDate, &dates).ok());

  ColumnVector strs(DataType::kString);
  ASSERT_TRUE(ValueParser::ParseInto("text", DataType::kString, &strs).ok());
  EXPECT_EQ(strs.GetString(0), "text");
}

// --------------------------------------------------------------- CsvWriter

TEST(CsvWriterTest, WriteThenTokenizeRoundTrips) {
  auto dir = TempDir::Create("nodb-csv");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->FilePath("out.csv");
  CsvDialect dialect = CsvDialect::QuotedCsv();
  {
    auto file = OpenWritableFile(path);
    ASSERT_TRUE(file.ok());
    CsvWriter writer(std::move(*file), dialect);
    ASSERT_TRUE(writer.WriteRecord({"plain", "with,comma", "with\"quote"})
                    .ok());
    ASSERT_TRUE(writer.WriteRecord({"", "last"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  auto lines = SplitString(*content, '\n');
  ASSERT_GE(lines.size(), 2u);
  CsvTokenizer tok(dialect);
  std::vector<uint32_t> starts;
  std::string scratch;
  ASSERT_EQ(tok.TokenizeLine(lines[0], &starts), 3u);
  EXPECT_EQ(TokenizedField(tok, lines[0], starts, 0, &scratch), "plain");
  EXPECT_EQ(TokenizedField(tok, lines[0], starts, 1, &scratch),
            "with,comma");
  EXPECT_EQ(TokenizedField(tok, lines[0], starts, 2, &scratch),
            "with\"quote");
  ASSERT_EQ(tok.TokenizeLine(lines[1], &starts), 2u);
  EXPECT_EQ(TokenizedField(tok, lines[1], starts, 0, &scratch), "");
}

TEST(CsvWriterTest, BuffersAndCountsBytes) {
  auto dir = TempDir::Create("nodb-csv");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->FilePath("buf.csv");
  auto file = OpenWritableFile(path);
  ASSERT_TRUE(file.ok());
  CsvWriter writer(std::move(*file), CsvDialect(), /*buffer_bytes=*/64);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.WriteRecord({"aaaa", "bbbb"}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(*GetFileSize(path), 100u * 10u);
}

}  // namespace
}  // namespace nodb
