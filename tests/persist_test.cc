// Tests for the persistent adaptive-state snapshot subsystem
// (persist/): save/recover round trips across engine restarts,
// signature validation (rewrite, same-size in-place rewrite with a
// restored mtime, clean append), per-section degradation, and
// corruption/truncation fuzzing at every section boundary — the engine
// must cold-start cleanly and return byte-identical results no matter
// what the sidecar contains.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "engines/nodb_engine.h"
#include "exec/query_result.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "persist/snapshot.h"
#include "raw/table_state.h"

namespace nodb {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-persist");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = dir_->FilePath("t.csv");
    schema_ = Schema::Make({{"a", DataType::kInt64},
                            {"b", DataType::kDouble},
                            {"c", DataType::kString}});
    ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 200)).ok());
  }

  static std::string Rows(int64_t from, int64_t to) {
    std::string out;
    for (int64_t r = from; r < to; ++r) {
      out += std::to_string(r) + "," + std::to_string(r) + ".5,s" +
             std::to_string(r % 7) + "\n";
    }
    return out;
  }

  NoDbConfig Config() {
    NoDbConfig config;
    config.rows_per_block = 32;
    return config;
  }

  Catalog MakeCatalog() {
    Catalog catalog;
    EXPECT_TRUE(
        catalog.RegisterTable({"t", path_, schema_, CsvDialect()}).ok());
    return catalog;
  }

  std::string SidecarPath() const {
    return persist::DefaultSnapshotPath(path_);
  }

  std::vector<std::string> Run(NoDbEngine* engine,
                               const std::string& sql) {
    auto outcome = engine->Execute(sql);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) return {};
    return outcome->result.CanonicalRows();
  }

  /// Runs the workload twice (crossing the promotion heat threshold),
  /// settles background promotion and saves the sidecar.
  void WarmAndSave(NoDbEngine* engine) {
    Run(engine, kQuery);
    Run(engine, kQuery);
    ASSERT_TRUE(engine->SaveSnapshot("t").ok());
  }

  static constexpr const char* kQuery = "SELECT a, b, c FROM t";

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
};

TEST_F(PersistTest, SaveLoadRoundTripRecoversEveryStructure) {
  std::vector<std::string> reference;
  {
    NoDbEngine engine(MakeCatalog(), Config());
    reference = Run(&engine, kQuery);
    WarmAndSave(&engine);
  }
  ASSERT_TRUE(FileExists(SidecarPath()));

  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->attempted);
  EXPECT_EQ(report->change, FileChange::kUnchanged);
  EXPECT_TRUE(report->map_recovered);
  EXPECT_TRUE(report->stats_recovered);
  EXPECT_TRUE(report->zones_recovered);
  EXPECT_TRUE(report->store_recovered);
  EXPECT_EQ(report->rows_recovered, 200u);
  EXPECT_GT(report->chunks_recovered, 0u);
  EXPECT_GT(report->zone_entries_recovered, 0u);
  EXPECT_GT(report->store_segments_recovered, 0u);

  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->map().known_rows(), 200u);
  EXPECT_TRUE(state->map().rows_complete());
  EXPECT_GT(state->stats().CoveredAttributes().size(), 0u);
  EXPECT_GT(state->stats().access_heat(0), 0u);

  // The recovered first query must be byte-identical to the cold one
  // and skip phase-1 parsing entirely: every block is served from the
  // recovered shadow store.
  auto outcome = engine.Execute(kQuery);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.CanonicalRows(), reference);
  EXPECT_EQ(outcome->metrics.scan.fields_tokenized, 0u);
  EXPECT_EQ(outcome->metrics.scan.fields_converted, 0u);
  EXPECT_EQ(outcome->metrics.scan.rows_from_raw, 0u);
  EXPECT_EQ(outcome->metrics.scan.rows_from_store, 200u);
  EXPECT_GE(outcome->metrics.scan.scans_using_recovered_map, 1u);
  EXPECT_GE(outcome->metrics.scan.scans_using_recovered_store, 1u);
}

TEST_F(PersistTest, AutoModeRecoversOnOpenAndSavesOnTeardown) {
  NoDbConfig config = Config();
  config.snapshot_mode = SnapshotMode::kAuto;
  std::vector<std::string> reference;
  {
    NoDbEngine engine(MakeCatalog(), config);
    reference = Run(&engine, kQuery);
    Run(&engine, kQuery);
    engine.WaitForPromotions();
    // Teardown saves automatically.
  }
  ASSERT_TRUE(FileExists(SidecarPath()));

  NoDbEngine engine(MakeCatalog(), config);
  auto outcome = engine.Execute(kQuery);  // open recovers automatically
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.CanonicalRows(), reference);
  EXPECT_EQ(outcome->metrics.scan.rows_from_raw, 0u);
  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->recovery().attempted);
  EXPECT_TRUE(state->recovery().any_recovered());
}

TEST_F(PersistTest, SnapshotModeOffRefusesExplicitCalls) {
  NoDbConfig config = Config();
  config.snapshot_mode = SnapshotMode::kOff;
  NoDbEngine engine(MakeCatalog(), config);
  Run(&engine, kQuery);
  EXPECT_FALSE(engine.SaveSnapshot("t").ok());
  EXPECT_FALSE(engine.LoadSnapshot("t").ok());
  EXPECT_FALSE(FileExists(SidecarPath()));
}

TEST_F(PersistTest, SnapshotPathDirectoryPlacesSidecarThere) {
  auto snaps = TempDir::Create("nodb-persist-snaps");
  ASSERT_TRUE(snaps.ok());
  NoDbConfig config = Config();
  config.snapshot_path = snaps->path();
  std::vector<std::string> reference;
  {
    NoDbEngine engine(MakeCatalog(), config);
    reference = Run(&engine, kQuery);
    WarmAndSave(&engine);
  }
  EXPECT_FALSE(FileExists(SidecarPath()));
  // Directory placement keys the sidecar by basename + full-path
  // fingerprint (so same-basename tables cannot clobber each other).
  std::string placed = persist::SnapshotPathFor(
      {"t", path_, schema_, CsvDialect()}, snaps->path());
  EXPECT_EQ(placed.rfind(snaps->path() + "/t.csv.", 0), 0u);
  EXPECT_TRUE(FileExists(placed));

  NoDbEngine engine(MakeCatalog(), config);
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->any_recovered());
  EXPECT_EQ(Run(&engine, kQuery), reference);
}

TEST_F(PersistTest, SaveOnColdTableRefusesAndKeepsExistingSidecar) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  uint64_t good_size = *GetFileSize(SidecarPath());
  ASSERT_GT(good_size, 0u);

  // A fresh process that never queried the table must not freeze its
  // cold (empty) state over the previous process's populated sidecar.
  NoDbEngine engine(MakeCatalog(), Config());
  Status st = engine.SaveSnapshot("t");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(*GetFileSize(SidecarPath()), good_size);

  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->any_recovered());  // the good sidecar survived
}

TEST_F(PersistTest, RestoreAfterAppendOnWarmTableKeepsLiveState) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  auto app = OpenAppendableFile(path_);
  ASSERT_TRUE(app.ok());
  std::string tail = Rows(200, 250);
  ASSERT_TRUE((*app)->Append(Slice(tail.data(), tail.size())).ok());
  ASSERT_TRUE((*app)->Close().ok());

  // Warm the engine *against the appended file*, then restore the
  // pre-append snapshot: the map/stats imports refuse (live wins) and
  // — critically — the append handling must not reopen discovery or
  // truncate the live map the queries just built. (The still-empty
  // store may legitimately adopt the snapshot's prefix segments; the
  // serve-time tail re-validation rejects the one stale frontier
  // segment.)
  NoDbEngine engine(MakeCatalog(), Config());
  std::vector<std::string> before = Run(&engine, kQuery);
  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  ASSERT_TRUE(state->map().rows_complete());

  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->map_recovered);
  EXPECT_FALSE(report->stats_recovered);
  EXPECT_TRUE(state->map().rows_complete());  // live map untouched
  EXPECT_EQ(state->map().known_rows(), 250u);
  EXPECT_EQ(Run(&engine, kQuery), before);
}

TEST_F(PersistTest, LoadOnWarmTableRecoversNothingAndChangesNothing) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  NoDbEngine engine(MakeCatalog(), Config());
  std::vector<std::string> before = Run(&engine, kQuery);  // warm state
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->map_recovered);  // live structures win
  EXPECT_EQ(Run(&engine, kQuery), before);
}

TEST_F(PersistTest, RewrittenFileColdStartsCleanly) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  // Rewrite with different content (and size): the snapshot is stale.
  ASSERT_TRUE(WriteStringToFile(path_, Rows(1000, 1100)).ok());

  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->attempted);
  EXPECT_FALSE(report->any_recovered());
  EXPECT_NE(report->detail.find("rewritten"), std::string::npos)
      << report->detail;

  NoDbEngine fresh(MakeCatalog(), Config());
  EXPECT_EQ(Run(&engine, kQuery), Run(&fresh, kQuery));
}

TEST_F(PersistTest, SameSizeInPlaceRewritePreservingMtimeIsDetected) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  // Rewrite every row in place — identical byte length, different
  // values — and restore the original mtime, simulating an editor or
  // tool that preserves timestamps. Size+mtime alone cannot tell the
  // difference; only the content hashes can.
  auto old_time = std::filesystem::last_write_time(path_);
  std::string original;
  {
    auto read = ReadFileToString(path_);
    ASSERT_TRUE(read.ok());
    original = *read;
  }
  std::string rewritten = original;
  for (char& ch : rewritten) {
    if (ch == '3') ch = '4';  // same length, different numbers
  }
  ASSERT_NE(rewritten, original);
  ASSERT_EQ(rewritten.size(), original.size());
  ASSERT_TRUE(
      WriteStringToFile(path_, Slice(rewritten.data(), rewritten.size()))
          .ok());
  std::filesystem::last_write_time(path_, old_time);

  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  // The stale snapshot must be rejected: recovering the old positional
  // map / store over the new bytes would return wrong answers.
  EXPECT_FALSE(report->any_recovered());

  NoDbEngine fresh(MakeCatalog(), Config());
  EXPECT_EQ(Run(&engine, kQuery), Run(&fresh, kQuery));
}

TEST_F(PersistTest, CleanAppendRecoversPrefixAndFirstTouchesTail) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  auto app = OpenAppendableFile(path_);
  ASSERT_TRUE(app.ok());
  std::string tail = Rows(200, 250);
  ASSERT_TRUE((*app)->Append(Slice(tail.data(), tail.size())).ok());
  ASSERT_TRUE((*app)->Close().ok());

  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->attempted);
  EXPECT_EQ(report->change, FileChange::kAppended);
  EXPECT_TRUE(report->map_recovered);
  EXPECT_EQ(report->rows_recovered, 200u);

  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_FALSE(state->map().rows_complete());  // tail to discover

  NoDbEngine fresh(MakeCatalog(), Config());
  EXPECT_EQ(Run(&engine, kQuery), Run(&fresh, kQuery));
  EXPECT_EQ(engine.table_state("t")->map().known_rows(), 250u);
}

TEST_F(PersistTest, CorruptSectionDegradesOnlyThatStructure) {
  {
    NoDbEngine engine(MakeCatalog(), Config());
    WarmAndSave(&engine);
  }
  auto layout = persist::InspectSnapshot(SidecarPath());
  ASSERT_TRUE(layout.ok());
  auto bytes = ReadFileToString(SidecarPath());
  ASSERT_TRUE(bytes.ok());
  for (const persist::SectionInfo& section : layout->sections) {
    if (section.id != persist::Snapshot::kSectionStore) continue;
    ASSERT_GT(section.length, 0u);
    std::string corrupt = *bytes;
    corrupt[section.offset + section.length / 2] ^= 0x20;
    ASSERT_TRUE(WriteFileAtomic(SidecarPath(),
                                Slice(corrupt.data(), corrupt.size()))
                    .ok());
  }

  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->map_recovered);    // intact sections recover
  EXPECT_TRUE(report->stats_recovered);
  EXPECT_FALSE(report->store_recovered);  // the corrupt one is cold
  EXPECT_NE(report->detail.find("store"), std::string::npos);

  NoDbEngine fresh(MakeCatalog(), Config());
  EXPECT_EQ(Run(&engine, kQuery), Run(&fresh, kQuery));
}

/// Shared fuzz driver: mutates the sidecar, then requires a clean
/// engine start and byte-identical results.
class PersistFuzzTest : public PersistTest {
 protected:
  void SaveAndSnapshotBytes() {
    {
      NoDbEngine engine(MakeCatalog(), Config());
      reference_ = Run(&engine, kQuery);
      WarmAndSave(&engine);
    }
    auto layout = persist::InspectSnapshot(SidecarPath());
    ASSERT_TRUE(layout.ok());
    layout_ = *layout;
    auto bytes = ReadFileToString(SidecarPath());
    ASSERT_TRUE(bytes.ok());
    bytes_ = *bytes;
  }

  void ExpectCleanStart(const std::string& label) {
    NoDbEngine engine(MakeCatalog(), Config());
    auto report = engine.LoadSnapshot("t");
    ASSERT_TRUE(report.ok()) << label;
    auto outcome = engine.Execute(kQuery);
    ASSERT_TRUE(outcome.ok()) << label << ": "
                              << outcome.status().ToString();
    EXPECT_EQ(outcome->result.CanonicalRows(), reference_) << label;
  }

  std::vector<std::string> reference_;
  persist::SnapshotLayout layout_;
  std::string bytes_;
};

TEST_F(PersistFuzzTest, ByteFlipAtEverySectionBoundary) {
  SaveAndSnapshotBytes();
  // Offsets to attack: the header start, the directory region, and for
  // every section its first, middle and last payload byte.
  std::vector<size_t> offsets = {0, 8, 40};
  for (const persist::SectionInfo& section : layout_.sections) {
    if (section.length == 0) continue;
    offsets.push_back(section.offset);
    offsets.push_back(section.offset + section.length / 2);
    offsets.push_back(section.offset + section.length - 1);
  }
  for (size_t offset : offsets) {
    ASSERT_LT(offset, bytes_.size());
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    ASSERT_TRUE(WriteFileAtomic(SidecarPath(),
                                Slice(corrupt.data(), corrupt.size()))
                    .ok());
    ExpectCleanStart("byte flip at offset " + std::to_string(offset));
  }
}

TEST_F(PersistFuzzTest, TruncationAtEverySectionBoundary) {
  SaveAndSnapshotBytes();
  std::vector<size_t> cuts = {0, 4, 20};
  for (const persist::SectionInfo& section : layout_.sections) {
    cuts.push_back(section.offset);             // section fully missing
    cuts.push_back(section.offset + section.length / 2);  // torn
    cuts.push_back(section.offset + section.length);      // next missing
  }
  for (size_t cut : cuts) {
    ASSERT_LE(cut, bytes_.size());
    std::string truncated = bytes_.substr(0, cut);
    ASSERT_TRUE(WriteFileAtomic(SidecarPath(),
                                Slice(truncated.data(), truncated.size()))
                    .ok());
    ExpectCleanStart("truncated at " + std::to_string(cut));
  }
  // And the empty sidecar.
  ASSERT_TRUE(WriteFileAtomic(SidecarPath(), Slice("", 0)).ok());
  ExpectCleanStart("empty sidecar");
}

TEST_F(PersistFuzzTest, MissingSidecarIsAColdStart) {
  SaveAndSnapshotBytes();
  ASSERT_TRUE(RemoveFileIfExists(SidecarPath()).ok());
  NoDbEngine engine(MakeCatalog(), Config());
  auto report = engine.LoadSnapshot("t");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->attempted);
  EXPECT_NE(report->detail.find("no snapshot"), std::string::npos);
  EXPECT_EQ(Run(&engine, kQuery), reference_);
}

}  // namespace
}  // namespace nodb
