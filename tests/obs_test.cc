// Tests for the observability layer: metrics registry primitives
// (sharded counters, gauges, log-bucketed latency histograms,
// Prometheus exposition), trace-span integrity (every span closed,
// monotone timestamps, wall-time coverage), client attribution under
// concurrency, and the EXPLAIN / EXPLAIN ANALYZE surfaces.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace nodb {
namespace {

// ----------------------------------------------------------- metrics

TEST(MetricsTest, CounterSumsAcrossThreads) {
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), 80000u);
}

TEST(MetricsTest, GaugeAddSubSet) {
  obs::Gauge gauge;
  gauge.Add(5);
  gauge.Sub(2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(-7);
  EXPECT_EQ(gauge.Value(), -7);
}

TEST(MetricsTest, HistogramBucketsAreConservative) {
  // Every value maps to a bucket whose upper bound is >= the value and
  // within 25% of it (4 sub-buckets per octave).
  for (uint64_t v : {1ull, 3ull, 4ull, 5ull, 100ull, 1023ull, 1024ull,
                     999999ull, 123456789ull}) {
    size_t index = obs::LatencyHistogram::BucketIndex(v);
    uint64_t bound = obs::LatencyHistogram::BucketUpperBound(index);
    EXPECT_GE(bound, v) << v;
    EXPECT_LE(bound, v + v / 4 + 1) << v;
    if (index > 0) {
      EXPECT_LT(obs::LatencyHistogram::BucketUpperBound(index - 1), v)
          << v;
    }
  }
}

TEST(MetricsTest, HistogramSnapshotQuantiles) {
  obs::LatencyHistogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Record(i * 1000);
  obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000000u);
  // Quantiles resolve to bucket upper bounds: conservative (>= true
  // value) but never past the recorded max.
  EXPECT_GE(snap.p50, 500000u);
  EXPECT_LE(snap.p50, 700000u);
  EXPECT_GE(snap.p99, 990000u);
  EXPECT_LE(snap.p99, 1000000u);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  obs::LatencyHistogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 5000; ++i) histogram.Record(42);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Snapshot().count, 20000u);
  EXPECT_EQ(histogram.Snapshot().max, 42u);
}

TEST(MetricsTest, RegistryHandlesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test_total", "help one");
  obs::Counter* b = registry.GetCounter("test_total", "help two");
  EXPECT_EQ(a, b);  // same name = same metric; first help wins
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_NE(registry.GetGauge("test_gauge"), nullptr);
  EXPECT_NE(registry.GetHistogram("test_ns"), nullptr);
}

TEST(MetricsTest, RenderPrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("demo_total", "A demo counter")->Add(7);
  registry.GetGauge("demo_depth", "A demo gauge")->Set(2);
  registry.GetHistogram("demo_ns", "A demo histogram")->Record(1000);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP demo_total A demo counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_ns summary"), std::string::npos);
  EXPECT_NE(text.find("demo_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("demo_ns_count 1"), std::string::npos);
  std::string compact = registry.RenderText();
  EXPECT_NE(compact.find("demo_total"), std::string::npos);
}

// ------------------------------------------------------------- spans

TEST(TraceTest, SpansNestAndClose) {
  obs::TraceContext ctx(7, "client-0", "SELECT 1");
  size_t outer = ctx.OpenSpan("query.execute");
  size_t inner = ctx.OpenSpan("query.parse");
  EXPECT_EQ(ctx.open_spans(), 2u);
  ctx.CloseSpan(inner);
  ctx.CloseSpan(outer);
  EXPECT_EQ(ctx.open_spans(), 0u);
  obs::QueryTrace trace = ctx.Finish();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.id, 7u);
  EXPECT_EQ(trace.events[0].name, "query.execute");
  EXPECT_EQ(trace.events[0].depth, 0);
  EXPECT_EQ(trace.events[1].depth, 1);
  for (const obs::TraceEvent& event : trace.events) {
    EXPECT_GE(event.dur_ns, 0) << event.name;
  }
}

TEST(TraceTest, FinishForceClosesLeakedSpans) {
  obs::TraceContext ctx(1, "", "q");
  ctx.OpenSpan("query.execute");
  ctx.OpenSpan("query.drain");
  obs::QueryTrace trace = ctx.Finish();
  for (const obs::TraceEvent& event : trace.events) {
    EXPECT_GE(event.dur_ns, 0) << event.name;  // none left open
  }
}

TEST(TraceTest, OutOfOrderCloseStillFinishes) {
  obs::TraceContext ctx(2, "", "q");
  size_t outer = ctx.OpenSpan("query.execute");
  size_t inner = ctx.OpenSpan("query.parse");
  ctx.CloseSpan(outer);  // not top-of-stack
  EXPECT_EQ(ctx.open_spans(), 1u);
  ctx.CloseSpan(outer);  // double close is a no-op
  EXPECT_EQ(ctx.open_spans(), 1u);
  obs::QueryTrace trace = ctx.Finish();  // must close `inner` and return
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_GE(trace.events[inner].dur_ns, 0);
  EXPECT_GE(trace.events[outer].dur_ns, 0);
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  obs::ScopedSpan nothing(nullptr, "query.execute");
  nothing.Close();  // all no-ops
  obs::TraceContext ctx(1, "", "q");
  {
    obs::ScopedSpan span(&ctx, "query.execute");
  }
  EXPECT_EQ(ctx.open_spans(), 0u);
  EXPECT_EQ(ctx.num_events(), 1u);
}

TEST(TraceTest, JsonLinesAreChromeEvents) {
  obs::TraceContext ctx(3, "cli", "SELECT \"x\"");
  obs::ScopedSpan span(&ctx, "query.execute");
  span.Close();
  std::string lines = obs::Tracer::ToJsonLines(ctx.Finish());
  EXPECT_NE(lines.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(lines.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(lines.find("\"name\":\"query.execute\""), std::string::npos);
  EXPECT_NE(lines.find("\\\"x\\\""), std::string::npos);  // escaped SQL
}

TEST(TraceTest, TracerCollectsAndWritesFile) {
  auto dir = TempDir::Create("nodb-obs");
  ASSERT_TRUE(dir.ok());
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.SetEnabled(true);
  EXPECT_TRUE(tracer.enabled());
  uint64_t first = tracer.NextQueryId();
  EXPECT_LT(first, tracer.NextQueryId());  // ids increase

  obs::TraceContext ctx(first, "cli", "SELECT 1");
  obs::ScopedSpan span(&ctx, "query.execute");
  span.Close();
  tracer.Collect(ctx.Finish());
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  EXPECT_EQ(tracer.Snapshot()[0].client, "cli");

  std::string path = dir->FilePath("trace.jsonl");
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->rfind("[\n", 0), 0u);  // Chrome array opener
  EXPECT_NE(bytes->find("query.execute"), std::string::npos);
}

TEST(TraceTest, SessionLabelNestsPerThread) {
  EXPECT_EQ(obs::ScopedSessionLabel::Current(), "");
  {
    std::string outer_label = "outer";
    obs::ScopedSessionLabel outer(outer_label);
    EXPECT_EQ(obs::ScopedSessionLabel::Current(), "outer");
    {
      std::string inner_label = "inner";
      obs::ScopedSessionLabel inner(inner_label);
      EXPECT_EQ(obs::ScopedSessionLabel::Current(), "inner");
    }
    EXPECT_EQ(obs::ScopedSessionLabel::Current(), "outer");
    std::thread other([] {
      EXPECT_EQ(obs::ScopedSessionLabel::Current(), "");  // thread-local
    });
    other.join();
  }
  EXPECT_EQ(obs::ScopedSessionLabel::Current(), "");
}

// ---------------------------------------------- engine integration

class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-obs-engine");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    std::string path = dir_->FilePath("sales.csv");
    std::string content;
    const char* regions[] = {"north", "south", "east", "west"};
    for (int i = 0; i < 4000; ++i) {
      content += std::to_string(i);
      content += ",";
      content += regions[i % 4];
      content += ",";
      content += std::to_string((i * 7) % 100);
      content += ".25\n";
    }
    ASSERT_TRUE(WriteStringToFile(path, content).ok());
    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"region", DataType::kString},
                                {"amount", DataType::kDouble}});
    ASSERT_TRUE(
        catalog_.RegisterTable({"sales", path, schema, CsvDialect()}).ok());
  }

  std::unique_ptr<TempDir> dir_;
  Catalog catalog_;
};

TEST_F(ObsEngineTest, TracedQueryHasClosedMonotoneSpans) {
  NoDbConfig config;
  config.rows_per_block = 256;
  config.trace_mode = TraceMode::kOn;
  NoDbEngine engine(catalog_, config);
  ASSERT_TRUE(engine.tracer().enabled());

  auto outcome =
      engine.Execute("SELECT COUNT(*) FROM sales WHERE amount > 50");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  engine.WaitForPromotions();

  std::vector<obs::QueryTrace> traces = engine.tracer().Snapshot();
  ASSERT_FALSE(traces.empty());
  const obs::QueryTrace& trace = traces[0];
  EXPECT_EQ(trace.sql, "SELECT COUNT(*) FROM sales WHERE amount > 50");

  ASSERT_FALSE(trace.events.empty());
  EXPECT_EQ(trace.events[0].name, "query.execute");
  int64_t last_start = 0;
  std::set<std::string> names;
  for (const obs::TraceEvent& event : trace.events) {
    EXPECT_GE(event.dur_ns, 0) << event.name;  // every span closed
    EXPECT_GE(event.start_ns, last_start) << event.name;  // monotone
    last_start = event.start_ns;
    names.insert(event.name);
  }
  for (const char* expected :
       {"query.execute", "query.parse", "query.plan", "query.drain"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  // The raw scan did real work, so its cost categories became spans,
  // and the profiler recorded the operator tree.
  EXPECT_TRUE(names.count("scan.tokenize"));
  EXPECT_TRUE(names.count("exec.scan"));

  // Coverage: the root span tracks the query wall time, and the three
  // measured phases account for (nearly) all of it.
  const obs::TraceEvent& root = trace.events[0];
  const QueryMetrics& metrics = outcome->metrics;
  int64_t accounted =
      metrics.parse_ns + metrics.plan_ns + metrics.drain_ns;
  EXPECT_GE(accounted,
            static_cast<int64_t>(0.95 * static_cast<double>(root.dur_ns)));
  EXPECT_GE(root.dur_ns,
            static_cast<int64_t>(
                0.95 * static_cast<double>(metrics.total_ns)));
}

TEST_F(ObsEngineTest, BackgroundPromotionIsTraced) {
  NoDbConfig config;
  config.rows_per_block = 256;
  config.trace_mode = TraceMode::kOn;
  config.promote_after_accesses = 2;
  NoDbEngine engine(catalog_, config);
  // LIMIT abandons the scan after the first batch, so piggybacked
  // promotion cannot cover the file and a real background pass runs.
  for (int i = 0; i < 4; ++i) {
    auto outcome =
        engine.Execute("SELECT amount FROM sales LIMIT 5");
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  engine.WaitForPromotions();
  bool saw_promotion = false;
  for (const obs::QueryTrace& trace : engine.tracer().Snapshot()) {
    for (const obs::TraceEvent& event : trace.events) {
      if (event.name == "promoter.pass") {
        saw_promotion = true;
        EXPECT_EQ(trace.client, "background");
        EXPECT_NE(trace.sql.find("promote sales"), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(saw_promotion);
}

TEST_F(ObsEngineTest, ConcurrentClientsGetAttributedTraces) {
  NoDbConfig config;
  config.rows_per_block = 256;
  NoDbEngine serial_engine(catalog_, config);

  std::vector<std::string> sqls;
  for (int i = 0; i < 16; ++i) {
    sqls.push_back("SELECT region, COUNT(*) AS n FROM sales WHERE id >= " +
                   std::to_string(i * 100) +
                   " GROUP BY region ORDER BY region");
  }
  // Reference: the same batch executed serially, untraced.
  std::vector<std::vector<std::string>> expected;
  for (const std::string& sql : sqls) {
    auto outcome = serial_engine.Execute(sql);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    expected.push_back(outcome->result.CanonicalRows());
  }

  config.trace_mode = TraceMode::kOn;
  NoDbEngine engine(catalog_, config);
  ConcurrentBatchOutcome batch = engine.ExecuteConcurrent(sqls, 8);
  EXPECT_EQ(batch.clients, 8u);
  ASSERT_EQ(batch.reports.size(), sqls.size());
  for (size_t i = 0; i < batch.reports.size(); ++i) {
    ASSERT_TRUE(batch.reports[i].status.ok())
        << batch.reports[i].status.ToString();
    // Identical answers with tracing on, concurrently.
    EXPECT_EQ(batch.reports[i].result.CanonicalRows(), expected[i]) << i;
  }
  engine.WaitForPromotions();

  std::set<uint64_t> ids;
  size_t query_traces = 0;
  for (const obs::QueryTrace& trace : engine.tracer().Snapshot()) {
    EXPECT_TRUE(ids.insert(trace.id).second) << "duplicate trace id";
    if (trace.client == "background") continue;
    ++query_traces;
    // Attribution: the session label of the executing client.
    EXPECT_EQ(trace.client.rfind("client-", 0), 0u) << trace.client;
    ASSERT_FALSE(trace.events.empty());
    EXPECT_EQ(trace.events[0].name, "query.execute");
    int64_t last_start = 0;
    for (const obs::TraceEvent& event : trace.events) {
      EXPECT_GE(event.dur_ns, 0) << event.name;
      EXPECT_GE(event.start_ns, last_start) << event.name;
      last_start = event.start_ns;
    }
  }
  EXPECT_EQ(query_traces, sqls.size());
}

TEST_F(ObsEngineTest, QueryTelemetryLandsInGlobalRegistry) {
  NoDbConfig config;
  config.rows_per_block = 256;
  NoDbEngine engine(catalog_, config);
  auto outcome = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(outcome.ok());
  std::string text = obs::MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("nodb_queries_total"), std::string::npos);
  EXPECT_NE(text.find("nodb_query_latency_ns"), std::string::npos);
  EXPECT_NE(text.find("nodb_scan_rows_total"), std::string::npos);
}

// ------------------------------------------- EXPLAIN [ANALYZE]

TEST(StripExplainTest, RecognizesPrefixes) {
  std::string_view sql = "EXPLAIN SELECT 1";
  bool analyze = true;
  EXPECT_TRUE(StripExplainPrefix(&sql, &analyze));
  EXPECT_FALSE(analyze);
  EXPECT_EQ(sql, "SELECT 1");

  sql = "  explain Analyze  SELECT * FROM t";
  EXPECT_TRUE(StripExplainPrefix(&sql, &analyze));
  EXPECT_TRUE(analyze);
  EXPECT_EQ(sql, "SELECT * FROM t");

  sql = "SELECT explain FROM t";
  analyze = true;
  EXPECT_FALSE(StripExplainPrefix(&sql, &analyze));
  EXPECT_EQ(sql, "SELECT explain FROM t");

  // Word boundary: EXPLAINX is not the keyword.
  sql = "EXPLAINX SELECT 1";
  EXPECT_FALSE(StripExplainPrefix(&sql, &analyze));
}

TEST_F(ObsEngineTest, ExplainReturnsPlanText) {
  NoDbConfig config;
  config.rows_per_block = 256;
  NoDbEngine engine(catalog_, config);
  auto outcome = engine.Execute(
      "EXPLAIN SELECT region FROM sales WHERE amount > 10");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->result.schema()->num_fields(), 1u);
  EXPECT_EQ(outcome->result.schema()->field(0).name, "QUERY PLAN");
  std::string text;
  for (size_t i = 0; i < outcome->result.num_rows(); ++i) {
    text += outcome->result.Row(i)[0].str() + "\n";
  }
  EXPECT_NE(text.find("SCAN sales"), std::string::npos) << text;
}

TEST_F(ObsEngineTest, ExplainAnalyzeAccountsWallTime) {
  NoDbConfig config;
  config.rows_per_block = 256;
  NoDbEngine engine(catalog_, config);
  auto outcome = engine.Execute(
      "EXPLAIN ANALYZE SELECT region, COUNT(*) AS n FROM sales "
      "WHERE amount > 25 GROUP BY region ORDER BY region");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  std::string text;
  for (size_t i = 0; i < outcome->result.num_rows(); ++i) {
    text += outcome->result.Row(i)[0].str() + "\n";
  }
  // The annotated tree: operator lines with rows, then accounting.
  EXPECT_NE(text.find("SCAN sales"), std::string::npos) << text;
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos) << text;
  EXPECT_NE(text.find("rows"), std::string::npos) << text;
  EXPECT_NE(text.find("accounted"), std::string::npos) << text;

  // The acceptance gate: parse+plan+execute within 5% of wall time.
  size_t at = text.find("accounted ");
  ASSERT_NE(at, std::string::npos);
  double coverage = std::stod(text.substr(at + 10));
  EXPECT_GE(coverage, 95.0) << text;
  EXPECT_LE(coverage, 100.5) << text;

  // It really executed: the metrics carry the scan's work.
  EXPECT_GT(outcome->metrics.scan.rows_scanned, 0u);
  EXPECT_GT(outcome->metrics.drain_ns, 0);
}

TEST_F(ObsEngineTest, ExplainAnalyzeRowsMatchPlainQuery) {
  NoDbConfig config;
  config.rows_per_block = 256;
  NoDbEngine engine(catalog_, config);
  auto plain = engine.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(plain.ok());
  auto analyzed = engine.Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(analyzed.ok());
  std::string text;
  for (size_t i = 0; i < analyzed->result.num_rows(); ++i) {
    text += analyzed->result.Row(i)[0].str() + "\n";
  }
  // The aggregate emitted exactly one row, visible in the tree.
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos) << text;
  EXPECT_EQ(plain->result.Row(0)[0], Value::Int64(4000));
}

}  // namespace
}  // namespace nodb
