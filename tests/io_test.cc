// Unit tests for the I/O layer: POSIX files, the block-buffered reader
// and the update-detection file signatures.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "io/buffered_reader.h"
#include "io/file.h"
#include "io/file_signature.h"
#include "io/temp_dir.h"
#include "util/random.h"

namespace nodb {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-io-test");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  std::string Path(const std::string& name) { return dir_->FilePath(name); }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(IoTest, WriteReadRoundTrip) {
  std::string path = Path("a.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello raw data").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello raw data");
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 14u);
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFileIfExists(path).ok());  // idempotent
}

TEST_F(IoTest, OpenMissingFileFails) {
  auto file = OpenRandomAccessFile(Path("missing.csv"));
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsIOError());
}

TEST_F(IoTest, AppendableFileAppends) {
  std::string path = Path("log.csv");
  ASSERT_TRUE(WriteStringToFile(path, "one\n").ok());
  auto file = OpenAppendableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("two\n").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*ReadFileToString(path), "one\ntwo\n");
}

TEST_F(IoTest, RandomAccessPositionalReads) {
  std::string path = Path("b.txt");
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  auto file = OpenRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  char scratch[16];
  Slice out;
  ASSERT_TRUE((*file)->Read(3, 4, scratch, &out).ok());
  EXPECT_EQ(out.ToString(), "3456");
  // Reading past EOF yields a short read, not an error.
  ASSERT_TRUE((*file)->Read(8, 10, scratch, &out).ok());
  EXPECT_EQ(out.ToString(), "89");
  ASSERT_TRUE((*file)->Read(100, 4, scratch, &out).ok());
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------- BufferedReader

class BufferedReaderTest : public IoTest {
 protected:
  /// A file of `lines` rows "rowNNNN<pad>\n" with a tiny reader buffer
  /// so block-boundary paths are exercised.
  void MakeLines(size_t lines, size_t pad, size_t buffer_size) {
    std::string path = Path("lines.txt");
    std::string content;
    for (size_t i = 0; i < lines; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "row%04zu", i);
      content += buf;
      content += std::string(pad, 'x');
      content += '\n';
      line_starts_.push_back(i == 0 ? 0 : line_starts_.back() +
                                              7 + pad + 1);
    }
    ASSERT_TRUE(WriteStringToFile(path, content).ok());
    auto file = OpenRandomAccessFile(path);
    ASSERT_TRUE(file.ok());
    reader_ = std::make_unique<BufferedReader>(
        std::shared_ptr<RandomAccessFile>(std::move(*file)), buffer_size);
    content_ = std::move(content);
  }

  std::vector<uint64_t> line_starts_;
  std::string content_;
  std::unique_ptr<BufferedReader> reader_;
};

TEST_F(BufferedReaderTest, ReadAtAnywhereMatchesContent) {
  MakeLines(100, 20, 4096);
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t off = rng.Uniform(content_.size());
    size_t len = 1 + rng.Uniform(200);
    Slice out;
    ASSERT_TRUE(reader_->ReadAt(off, len, &out).ok());
    size_t expected = std::min<uint64_t>(len, content_.size() - off);
    ASSERT_EQ(out.size(), expected);
    EXPECT_EQ(out.view(), std::string_view(content_).substr(off, expected));
  }
}

TEST_F(BufferedReaderTest, ReadsSpanningBlockBoundary) {
  MakeLines(100, 100, 4096);  // lines of 108 bytes vs 4 KiB blocks
  // A read crossing the 4096 boundary must still be contiguous.
  Slice out;
  ASSERT_TRUE(reader_->ReadAt(4090, 20, &out).ok());
  EXPECT_EQ(out.view(), std::string_view(content_).substr(4090, 20));
}

TEST_F(BufferedReaderTest, ReadLargerThanBufferGrowsIt) {
  MakeLines(100, 100, 4096);
  Slice out;
  ASSERT_TRUE(reader_->ReadAt(0, 9000, &out).ok());
  EXPECT_EQ(out.size(), 9000u);
  EXPECT_EQ(out.view(), std::string_view(content_).substr(0, 9000));
}

TEST_F(BufferedReaderTest, FindNewlineWalksEveryLine) {
  MakeLines(200, 13, 4096);
  uint64_t pos = 0;
  for (size_t i = 0; i < 200; ++i) {
    uint64_t end = 0;
    ASSERT_TRUE(reader_->FindNewline(pos, &end).ok()) << "line " << i;
    ASSERT_EQ(content_[end], '\n');
    if (i + 1 < 200) {
      EXPECT_EQ(end + 1, line_starts_[i + 1]);
    }
    pos = end + 1;
  }
  // Past the last line: OutOfRange with end == file size.
  uint64_t end = 0;
  Status s = reader_->FindNewline(pos, &end);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_EQ(end, content_.size());
}

TEST_F(BufferedReaderTest, FindNewlineOnUnterminatedTail) {
  std::string path = Path("tail.txt");
  ASSERT_TRUE(WriteStringToFile(path, "a,b\nc,d").ok());  // no final \n
  auto file = OpenRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  BufferedReader reader(std::shared_ptr<RandomAccessFile>(std::move(*file)));
  uint64_t end = 0;
  ASSERT_TRUE(reader.FindNewline(0, &end).ok());
  EXPECT_EQ(end, 3u);
  Status s = reader.FindNewline(4, &end);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_EQ(end, 7u);  // the unterminated line ends at EOF
}

TEST_F(BufferedReaderTest, IoCountersAccumulateAndReset) {
  MakeLines(100, 100, 4096);
  Slice out;
  ASSERT_TRUE(reader_->ReadAt(0, 100, &out).ok());
  EXPECT_GT(reader_->bytes_read(), 0u);
  reader_->ResetCounters();
  EXPECT_EQ(reader_->bytes_read(), 0u);
  EXPECT_EQ(reader_->io_nanos(), 0);
}

TEST_F(BufferedReaderTest, RefreshSeesGrownFile) {
  std::string path = Path("grow.txt");
  ASSERT_TRUE(WriteStringToFile(path, "aaa\n").ok());
  auto file = OpenRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  BufferedReader reader(std::shared_ptr<RandomAccessFile>(std::move(*file)));
  EXPECT_EQ(reader.file_size(), 4u);
  auto app = OpenAppendableFile(path);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append("bbb\n").ok());
  ASSERT_TRUE((*app)->Close().ok());
  ASSERT_TRUE(reader.Refresh().ok());
  EXPECT_EQ(reader.file_size(), 8u);
  Slice out;
  ASSERT_TRUE(reader.ReadAt(4, 4, &out).ok());
  EXPECT_EQ(out.ToString(), "bbb\n");
}

// ---------------------------------------------------------- FileSignature

class FileSignatureTest : public IoTest {};

TEST_F(FileSignatureTest, UnchangedFile) {
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kUnchanged);
}

TEST_F(FileSignatureTest, AppendDetected) {
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  auto app = OpenAppendableFile(path);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append("5,6\n").ok());
  ASSERT_TRUE((*app)->Close().ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kAppended);
}

TEST_F(FileSignatureTest, RewriteDetected) {
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  // Same size, different content.
  ASSERT_TRUE(WriteStringToFile(path, "9,9\n9,9\n").ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
}

TEST_F(FileSignatureTest, ShrinkIsRewrite) {
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n").ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
}

TEST_F(FileSignatureTest, ContentVerifyCatchesMtimePreservingRewrite) {
  // An in-place rewrite that preserves size *and* mtime (editors and
  // tools that restore timestamps) is invisible to the fast
  // size+mtime short-circuit — only the bounded content prefix/suffix
  // hashes can tell. The persisted-snapshot loader depends on this.
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  auto old_time = std::filesystem::last_write_time(path);
  ASSERT_TRUE(WriteStringToFile(path, "9,9\n9,9\n").ok());  // same size
  std::filesystem::last_write_time(path, old_time);

  auto fast = sig->Compare();
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, FileChange::kUnchanged);  // fooled, by design

  auto verified = sig->Compare(/*verify_content=*/true);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, FileChange::kRewritten);
}

TEST_F(FileSignatureTest, ContentVerifyRoundTripsThroughParts) {
  std::string path = Path("sig.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  FileSignature rebuilt = FileSignature::FromParts(
      path, sig->size(), sig->mtime_nanos(), sig->head_hash(),
      sig->tail_hash());
  auto change = rebuilt.Compare(/*verify_content=*/true);
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kUnchanged);
}

TEST_F(FileSignatureTest, PrefixEditDetectedEvenWithSameSizeTail) {
  // Grow the file but also corrupt the old region: must NOT classify
  // as append.
  std::string path = Path("sig.csv");
  std::string original(100000, 'a');
  original += "\n";
  ASSERT_TRUE(WriteStringToFile(path, original).ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  std::string tampered = original;
  tampered[50] = 'Z';                // inside the head probe
  tampered += std::string(10, 'b');  // and grown
  ASSERT_TRUE(WriteStringToFile(path, tampered).ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
}

TEST_F(FileSignatureTest, TailEditBeforeGrowthDetected) {
  std::string path = Path("sig.csv");
  std::string original(100000, 'a');
  ASSERT_TRUE(WriteStringToFile(path, original).ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  std::string tampered = original;
  tampered[99999] = 'Z';  // inside the tail probe
  tampered += "extra";
  ASSERT_TRUE(WriteStringToFile(path, tampered).ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
}

TEST_F(FileSignatureTest, EmptyFileAppend) {
  std::string path = Path("empty.csv");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto sig = FileSignature::Capture(path);
  ASSERT_TRUE(sig.ok());
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n").ok());
  auto change = sig->Compare();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kAppended);
}

// ----------------------------------------------------------------- TempDir

TEST(TempDirTest, CreatesAndRemovesRecursively) {
  std::string kept;
  {
    auto dir = TempDir::Create("nodb-td");
    ASSERT_TRUE(dir.ok());
    kept = dir->path();
    ASSERT_TRUE(WriteStringToFile(dir->FilePath("f.txt"), "x").ok());
    EXPECT_TRUE(FileExists(dir->FilePath("f.txt")));
  }
  EXPECT_FALSE(FileExists(kept + "/f.txt"));
  EXPECT_FALSE(FileExists(kept));
}

TEST(TempDirTest, MoveTransfersOwnership) {
  auto dir = TempDir::Create("nodb-td");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->path();
  TempDir moved = std::move(*dir);
  EXPECT_EQ(moved.path(), path);
  EXPECT_TRUE(FileExists(path));
}

}  // namespace
}  // namespace nodb
