// Experiment E9 — warm restarts: cold first-query cost vs a first
// query recovered from a persisted adaptive-state snapshot.
//
// The paper notes the positional map "can also be written to disk" so
// its benefit survives restarts; persist/ extends that to all four
// adaptive structures. This driver measures exactly that claim:
//
//   cold     a fresh engine's first query — pays full first-touch
//            tokenize/parse over the raw file
//   save     freezing the warmed state into the .nodbmeta sidecar
//   recover  a *new* engine validating + thawing the sidecar
//   warm     the recovered engine's first query — served from the
//            recovered shadow store / positional map
//
// Every warm run's rows are verified byte-identical to the cold run,
// and the warm first query must show zero tokenized/converted fields
// and zero raw-tier rows (no phase-1 parsing at all) with recovered
// provenance counters set — exits non-zero otherwise. At
// representative scale (>= 50000 tuples) the warm first query must
// also be >= 3x faster than cold; below that the fixed per-query
// overhead dominates and the ratio is reported but not gated.
//
// Usage: restart [tuples] [attrs]   (default 200000 x 8; CI passes
// 60000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "monitor/panel.h"
#include "persist/snapshot.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  PrintHeader("E9 / cold start vs snapshot-recovered restart");
  uint64_t tuples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  uint32_t attrs =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 8;
  if (tuples < 1000) tuples = 1000;
  if (attrs < 3) attrs = 3;

  Workload w = MakeIntWorkload("t", tuples, attrs);
  const std::string sql =
      "SELECT attr0, attr1, attr2 FROM t WHERE attr1 >= 0";
  const std::string sidecar = persist::DefaultSnapshotPath(w.path);

  NoDbConfig config;  // defaults: everything on, snapshots manual

  // ---- cold: fresh process state, first query pays first-touch.
  std::vector<std::string> reference;
  int64_t cold_ns = 0;
  int64_t save_ns = 0;
  {
    NoDbEngine engine(w.catalog, config);
    Stopwatch watch;
    auto outcome = CheckOk(engine.Execute(sql), "cold query");
    cold_ns = watch.ElapsedNanos();
    reference = outcome.result.CanonicalRows();
    // Second touch crosses the promotion heat threshold; the sidecar
    // then holds a fully materialized store of the queried columns.
    CheckOk(engine.Execute(sql).status(), "second query");
    Stopwatch save_watch;
    CheckOk(engine.SaveSnapshot("t"), "save snapshot");
    save_ns = save_watch.ElapsedNanos();
  }
  uint64_t sidecar_bytes = CheckOk(GetFileSize(sidecar), "sidecar size");

  // ---- restart: a new engine recovers the sidecar, then queries.
  Stopwatch recover_watch;
  NoDbEngine engine(w.catalog, config);
  auto report = CheckOk(engine.LoadSnapshot("t"), "load snapshot");
  int64_t recover_ns = recover_watch.ElapsedNanos();
  if (!report.any_recovered()) {
    std::fprintf(stderr, "FAIL: nothing recovered (%s)\n",
                 report.detail.c_str());
    return 1;
  }

  Stopwatch warm_watch;
  auto warm = CheckOk(engine.Execute(sql), "warm query");
  int64_t warm_ns = warm_watch.ElapsedNanos();

  // ---- verification gates.
  if (warm.result.CanonicalRows() != reference) {
    std::fprintf(stderr, "FAIL: warm restart rows differ from cold run\n");
    return 1;
  }
  const ScanMetrics& s = warm.metrics.scan;
  if (s.fields_tokenized != 0 || s.fields_converted != 0 ||
      s.rows_from_raw != 0) {
    std::fprintf(stderr,
                 "FAIL: warm first query parsed raw data "
                 "(tokenized %llu, converted %llu, raw rows %llu)\n",
                 static_cast<unsigned long long>(s.fields_tokenized),
                 static_cast<unsigned long long>(s.fields_converted),
                 static_cast<unsigned long long>(s.rows_from_raw));
    return 1;
  }
  if (s.scans_using_recovered_map == 0 ||
      s.scans_using_recovered_store == 0) {
    std::fprintf(stderr,
                 "FAIL: recovered-provenance counters not set\n");
    return 1;
  }
  double speedup = warm_ns > 0
                       ? static_cast<double>(cold_ns) /
                             static_cast<double>(warm_ns)
                       : 0.0;
  if (tuples >= 50000 && speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: warm restart only %.2fx faster than cold "
                 "(>= 3x required at this scale)\n",
                 speedup);
    return 1;
  }

  // ---- report.
  std::printf("fixture: %llu tuples x %u attrs, %s raw, %s sidecar\n",
              static_cast<unsigned long long>(tuples), attrs,
              FormatBytes(w.file_bytes).c_str(),
              FormatBytes(sidecar_bytes).c_str());
  std::printf(
      "recovered: %llu rows, %llu map chunks, %llu zone entries, "
      "%llu store segments%s\n",
      static_cast<unsigned long long>(report.rows_recovered),
      static_cast<unsigned long long>(report.chunks_recovered),
      static_cast<unsigned long long>(report.zone_entries_recovered),
      static_cast<unsigned long long>(report.store_segments_recovered),
      report.stats_recovered ? ", stats" : "");
  std::printf("\nphase,nanos\n");
  std::printf("cold_first_query,%lld\n", static_cast<long long>(cold_ns));
  std::printf("snapshot_save,%lld\n", static_cast<long long>(save_ns));
  std::printf("snapshot_recover,%lld\n",
              static_cast<long long>(recover_ns));
  std::printf("warm_first_query,%lld\n", static_cast<long long>(warm_ns));
  std::printf("\nwarm restart speedup: %.2fx (%s cold -> %s warm)\n",
              speedup, FormatNanos(cold_ns).c_str(),
              FormatNanos(warm_ns).c_str());
  std::printf("rows byte-identical: yes; warm raw parsing: none\n");
  std::printf("%s",
              MonitorPanel::RenderStorageTiers(*engine.table_state("t"))
                  .c_str());
  return 0;
}
