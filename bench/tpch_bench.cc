// Experiment E10 — TPC-H workload (the substrate of the SIGMOD'12
// evaluation this demo showcases).
//
// Generates lineitem + orders raw files, then runs Q1-shaped,
// Q6-shaped and a join query on every engine. Conventional engines pay
// their load first; PostgresRaw is measured cold (first touch) and
// warm (adapted). Cross-engine row counts are verified to agree.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "util/thread_pool.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

int64_t MedianNs(std::vector<int64_t> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: path for a Chrome-trace JSONL export of the
  // traced overhead-gate runs (CI uploads it as an artifact).
  const char* trace_path = argc >= 2 ? argv[1] : nullptr;
  PrintHeader("E10 / TPC-H-shaped workload on raw files");
  auto dir = CheckOk(TempDir::Create("nodb-tpch"), "temp dir");
  TpchSpec spec;
  spec.scale_factor = 0.01;  // ~15k orders, ~60k lineitems
  std::string li_path = dir.FilePath("lineitem.tbl");
  std::string ord_path = dir.FilePath("orders.tbl");
  uint64_t li_rows = CheckOk(GenerateTpchLineitem(li_path, spec), "lineitem");
  uint64_t ord_rows = CheckOk(GenerateTpchOrders(ord_path, spec), "orders");
  std::printf("lineitem: %llu rows, orders: %llu rows\n",
              static_cast<unsigned long long>(li_rows),
              static_cast<unsigned long long>(ord_rows));

  Catalog catalog;
  CheckOk(catalog.RegisterTable({"lineitem", li_path, TpchLineitemSchema(),
                                 CsvDialect::Pipe()}),
          "register");
  CheckOk(catalog.RegisterTable(
              {"orders", ord_path, TpchOrdersSchema(), CsvDialect::Pipe()}),
          "register");

  struct NamedQuery {
    const char* name;
    const char* sql;
  };
  NamedQuery queries[] = {
      {"Q1 (pricing summary)",
       "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
       "SUM(l_extendedprice) AS sum_base, "
       "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc, "
       "AVG(l_quantity) AS avg_qty, COUNT(*) AS n FROM lineitem "
       "WHERE l_shipdate <= DATE '1998-08-01' "
       "GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus"},
      {"Q6 (forecast revenue)",
       "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' "
       "AND l_shipdate < DATE '1995-01-01' "
       "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
      {"QJ (urgent lineitems)",
       "SELECT COUNT(*) AS n, SUM(l.l_extendedprice) AS s "
       "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
       "WHERE o.o_orderpriority = '1-URGENT'"},
  };

  // The SIMD tentpole's hard gate: stage-1 structural indexing of the
  // raw lineitem file must beat the scalar fallback kernels >= 3x.
  GateStructuralSpeedup(li_path, CsvDialect::Pipe(), 3.0);

  // Store-on vs store-off: the same repeated query, once over the
  // cached-raw path (map+cache warm, store disabled) and once served
  // from the shadow column store (hot columns promoted after the warm
  // run) — the paper's adaptive-loading payoff in one column pair.
  NoDbEngine raw(catalog, NoDbConfig(), "PostgresRaw");
  // Scalar twin: identical configuration with enable_simd=false, so the
  // cold-column pair below is the before/after of the SIMD kernels.
  NoDbConfig scalar_config;
  scalar_config.enable_simd = false;
  NoDbEngine raw_scalar(catalog, scalar_config, "PostgresRaw.scalar");
  NoDbConfig nostore_config;
  nostore_config.enable_store = false;
  NoDbEngine raw_nostore(catalog, nostore_config, "PostgresRaw.nostore");
  // Before/after for the parallel chunked first-touch scan: same
  // engine, same queries, but a cold table's first query pre-builds
  // the NoDB structures with one worker per hardware core.
  NoDbConfig par_config;
  par_config.num_threads = 0;  // 0 = one thread per core
  NoDbEngine raw_par(catalog, par_config, "PostgresRaw.par");
  LoadFirstEngine pg(catalog, LoadProfile::kPostgres);
  int64_t load_ns = CheckOk(pg.Initialize(), "load");
  std::printf("PostgreSQL load time: %s (PostgresRaw: none)\n",
              FormatNanos(load_ns).c_str());
  std::printf("parallel scan threads: %u\n\n",
              static_cast<unsigned>(ThreadPool::DefaultThreadCount()));

  bool all_match = true;
  std::printf(
      "%-24s %12s %12s %12s %12s %12s %12s  match  store rows s/c/r\n",
      "query", "Scalar.cold", "Raw.cold", "Raw.par.cold", "Raw.warm.off",
      "Raw.warm.on", "PostgreSQL");
  for (const auto& q : queries) {
    auto scalar_cold = CheckOk(raw_scalar.Execute(q.sql), q.name);
    auto cold = CheckOk(raw.Execute(q.sql), q.name);
    auto par_cold = CheckOk(raw_par.Execute(q.sql), q.name);
    // Second touch crosses the promotion threshold; settle background
    // promotion so the third run measures pure store serving.
    auto warm_on = CheckOk(raw.Execute(q.sql), q.name);
    raw.WaitForPromotions();
    auto hot_on = CheckOk(raw.Execute(q.sql), q.name);
    // Store-off twin: warm its structures the same number of times.
    CheckOk(raw_nostore.Execute(q.sql), q.name);
    CheckOk(raw_nostore.Execute(q.sql), q.name);
    auto hot_off = CheckOk(raw_nostore.Execute(q.sql), q.name);
    auto conv = CheckOk(pg.Execute(q.sql), q.name);
    bool match =
        cold.result.CanonicalRows() == conv.result.CanonicalRows() &&
        warm_on.result.CanonicalRows() == conv.result.CanonicalRows() &&
        hot_on.result.CanonicalRows() == conv.result.CanonicalRows() &&
        hot_off.result.CanonicalRows() == conv.result.CanonicalRows() &&
        par_cold.result.CanonicalRows() == conv.result.CanonicalRows() &&
        scalar_cold.result.CanonicalRows() == conv.result.CanonicalRows();
    all_match = all_match && match;
    std::printf("%-24s %12s %12s %12s %12s %12s %12s  %-5s %llu/%llu/%llu\n",
                q.name, FormatNanos(scalar_cold.metrics.total_ns).c_str(),
                FormatNanos(cold.metrics.total_ns).c_str(),
                FormatNanos(par_cold.metrics.total_ns).c_str(),
                FormatNanos(hot_off.metrics.total_ns).c_str(),
                FormatNanos(hot_on.metrics.total_ns).c_str(),
                FormatNanos(conv.metrics.total_ns).c_str(),
                match ? "yes" : "NO!",
                static_cast<unsigned long long>(
                    hot_on.metrics.scan.rows_from_store),
                static_cast<unsigned long long>(
                    hot_on.metrics.scan.rows_from_cache),
                static_cast<unsigned long long>(
                    hot_on.metrics.scan.rows_from_raw));
  }

  // Byte-identity sweep over the kernel/thread matrix: fresh engines,
  // {scalar, SIMD} x {1, 2, 8} threads, all against the load-first
  // reference. Failing this (or any per-query match above) fails the
  // bench — CI's guarantee that the SIMD tiers are pure accelerators.
  {
    const char* probe_sql = queries[1].sql;  // Q6: ints, doubles, dates
    auto reference = CheckOk(pg.Execute(probe_sql), "identity reference");
    const auto want = reference.result.CanonicalRows();
    for (const bool enable_simd : {false, true}) {
      for (const uint32_t threads : {1u, 2u, 8u}) {
        NoDbConfig config;
        config.enable_simd = enable_simd;
        config.num_threads = threads;
        NoDbEngine probe(catalog, config, "identity-probe");
        auto got = CheckOk(probe.Execute(probe_sql), "identity probe");
        if (got.result.CanonicalRows() != want) {
          std::fprintf(stderr,
                       "FAIL: identity sweep diverged (simd=%d threads=%u)\n",
                       enable_simd ? 1 : 0, threads);
          return 1;
        }
      }
    }
    std::printf(
        "\nidentity sweep: {scalar,simd} x {1,2,8} threads byte-identical "
        "to PostgreSQL\n");
  }
  if (!all_match) {
    std::fprintf(stderr, "FAIL: cross-engine row sets diverged\n");
    return 1;
  }

  // Tracing overhead gate: the warm path (everything adapted, store
  // serving) is where per-span bookkeeping would hurt, so measure it
  // there. Trials interleave tracer-off and tracer-on executions to
  // cancel drift, and medians absorb scheduler noise. Hard gate: the
  // traced median must stay within 3% of untraced (plus a small
  // absolute epsilon — warm queries run in microseconds, where a
  // single page fault outweighs any bookkeeping).
  {
    const char* probe_sql = queries[1].sql;  // Q6, fully warm on `raw`
    constexpr int kTrials = 21;
    constexpr int64_t kEpsilonNs = 100'000;
    if (trace_path != nullptr) raw.tracer().SetPath(trace_path);
    std::vector<int64_t> off_ns, on_ns;
    for (int i = 0; i < kTrials; ++i) {
      raw.tracer().SetEnabled(false);
      off_ns.push_back(
          CheckOk(raw.Execute(probe_sql), "overhead off").metrics.total_ns);
      raw.tracer().SetEnabled(true);
      on_ns.push_back(
          CheckOk(raw.Execute(probe_sql), "overhead on").metrics.total_ns);
    }
    raw.tracer().SetEnabled(false);
    int64_t med_off = MedianNs(off_ns);
    int64_t med_on = MedianNs(on_ns);
    double overhead =
        med_off > 0
            ? 100.0 * static_cast<double>(med_on - med_off) /
                  static_cast<double>(med_off)
            : 0.0;
    std::printf(
        "\ntrace overhead (warm Q6, median of %d interleaved trials): "
        "off %s, on %s (%+.1f%%)\n",
        kTrials, FormatNanos(med_off).c_str(), FormatNanos(med_on).c_str(),
        overhead);
    if (med_on > med_off + med_off * 3 / 100 + kEpsilonNs) {
      std::fprintf(stderr,
                   "FAIL: tracing overhead above 3%% on the warm path\n");
      return 1;
    }
    if (trace_path != nullptr) {
      std::printf("trace spans appended to %s\n", trace_path);
    }
  }

  std::printf(
      "\ndata-to-query totals after the 3-query workload (x3 for raw):\n"
      "  PostgresRaw: %s (zero load)\n  PostgreSQL:  %s (incl. load)\n",
      FormatNanos(raw.totals().data_to_query_ns()).c_str(),
      FormatNanos(pg.totals().data_to_query_ns()).c_str());
  return 0;
}
