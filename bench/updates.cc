// Experiment E5 — §4.2 Updates.
//
// Raw files change underneath the engine: rows are appended (and once,
// the file is rewritten) between queries, without telling the engine.
// PostgresRaw detects the change from the file signature, keeps its
// structures for appends (only the tail is newly parsed) and drops them
// on rewrites. Reported: detection outcome, query time and how much
// conversion work each re-query performed.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "io/file.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

std::string MakeRows(uint64_t from, uint64_t to) {
  std::string out;
  for (uint64_t r = from; r < to; ++r) {
    out += std::to_string(r);
    for (int c = 1; c < 10; ++c) {
      out += "," + std::to_string(r * 31 + static_cast<uint64_t>(c));
    }
    out += "\n";
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("E5 / updates on raw files under the engine");
  auto dir = CheckOk(TempDir::Create("nodb-updates"), "temp dir");
  std::string path = dir.FilePath("events.csv");
  CheckOk(WriteStringToFile(path, MakeRows(0, 100000)), "write");

  std::vector<Field> fields;
  for (int c = 0; c < 10; ++c) {
    fields.push_back(Field{"attr" + std::to_string(c), DataType::kInt64});
  }
  Catalog catalog;
  CheckOk(catalog.RegisterTable(
              {"events", path, Schema::Make(fields), CsvDialect()}),
          "register");
  NoDbEngine engine(catalog, NoDbConfig());

  const std::string sql =
      "SELECT COUNT(*) AS n, MAX(attr0) AS m FROM events WHERE attr3 > 0";

  std::printf("\nstep,action,detected,rows,total_ms,fields_converted,"
              "cache_hit_blocks\n");
  auto run = [&](int step, const char* action, FileChange detected) {
    auto outcome = CheckOk(engine.Execute(sql), "query");
    std::printf("%d,%s,%s,%s,%.2f,%llu,%llu\n", step, action,
                std::string(FileChangeToString(detected)).c_str(),
                outcome.result.Row(0)[0].ToString().c_str(),
                outcome.metrics.total_ns / 1e6,
                static_cast<unsigned long long>(
                    outcome.metrics.scan.fields_converted),
                static_cast<unsigned long long>(
                    outcome.metrics.scan.cache_block_hits));
  };

  run(1, "initial scan", FileChange::kUnchanged);
  run(2, "re-query (warm)", FileChange::kUnchanged);

  // Append 20% more rows; only the tail should be parsed.
  {
    auto app = CheckOk(OpenAppendableFile(path), "append open");
    CheckOk(app->Append(MakeRows(100000, 120000)), "append");
    CheckOk(app->Close(), "close");
  }
  auto detected = CheckOk(engine.RefreshTable("events"), "refresh");
  run(3, "after +20% append", detected);
  run(4, "re-query (warm again)", FileChange::kUnchanged);

  // Append again — detection also works implicitly inside Execute.
  {
    auto app = CheckOk(OpenAppendableFile(path), "append open");
    CheckOk(app->Append(MakeRows(120000, 125000)), "append");
    CheckOk(app->Close(), "close");
  }
  run(5, "after +5% append (auto-detect)", FileChange::kAppended);

  // Rewrite the file completely: everything must be invalidated.
  CheckOk(WriteStringToFile(path, MakeRows(500000, 550000)), "rewrite");
  detected = CheckOk(engine.RefreshTable("events"), "refresh");
  run(6, "after full rewrite", detected);
  run(7, "re-query (rebuilt structures)", FileChange::kUnchanged);

  std::printf(
      "\nshape: appends re-convert only the tail (compare "
      "fields_converted of steps 1 vs 3); rewrites re-convert "
      "everything once, then re-queries are cache-served again\n");
  return 0;
}
