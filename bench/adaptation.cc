// Experiment E3 — §4.2 Query Adaptation.
//
// Epochs of Select-Project queries over shifting parts of the input
// file, with constrained map/cache budgets: response times drop within
// an epoch as structures warm, jump at epoch boundaries when the
// workload moves, and old-epoch state is evicted (LRU). Each query row
// also reports its storage-tier breakdown — rows served from the
// shadow store vs the raw cache vs the raw file — showing hot columns
// graduating to the store as their heat crosses the promotion
// threshold. Prints the per-query response-time series plus eviction
// counters — the data behind the demo's "query adaptation"
// visualization.
//
// Usage: adaptation [tuples]   (default 100000; CI smoke passes less)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  PrintHeader("E3 / query adaptation across workload epochs");
  uint64_t tuples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  Workload w = MakeIntWorkload("adapt", tuples, 40);

  NoDbConfig config;
  config.rows_per_block = 4096;
  // One epoch's 5-attribute window fits; three epochs' history does not.
  config.positional_map_budget = 12u << 20;
  config.cache_budget = 14u << 20;
  NoDbEngine engine(w.catalog, config);

  constexpr int kEpochs = 4;
  constexpr int kQueriesPerEpoch = 8;

  std::printf(
      "\nepoch,query,attr_window,total_ms,tokenize_ms,convert_ms,io_ms,"
      "rows_store,rows_cache,rows_raw,cache_hit_blocks,map_evictions,"
      "cache_evictions,store_evictions\n");
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    int base = epoch * 10;  // windows: 0-4, 10-14, 20-24, 30-34
    for (int q = 0; q < kQueriesPerEpoch; ++q) {
      int a = base + (q % 4);
      std::string sql = "SELECT attr" + std::to_string(a) + ", attr" +
                        std::to_string(a + 1) + " FROM adapt WHERE attr" +
                        std::to_string(a) + " < " +
                        std::to_string(30000000 + q * 5000000) +
                        " LIMIT 1000000";
      auto outcome = CheckOk(engine.Execute(sql), "query");
      // Settle background promotion so the next query's tier column
      // reflects a deterministic store.
      engine.WaitForPromotions();
      const RawTableState* state = engine.table_state("adapt");
      std::printf(
          "%d,%d,attr%d-%d,%.2f,%.2f,%.2f,%.2f,%llu,%llu,%llu,%llu,%llu,"
          "%llu,%llu\n",
          epoch, epoch * kQueriesPerEpoch + q, a, a + 1,
          outcome.metrics.total_ns / 1e6,
          outcome.metrics.scan.tokenize_ns / 1e6,
          outcome.metrics.scan.convert_ns / 1e6,
          outcome.metrics.scan.io_ns / 1e6,
          static_cast<unsigned long long>(
              outcome.metrics.scan.rows_from_store),
          static_cast<unsigned long long>(
              outcome.metrics.scan.rows_from_cache),
          static_cast<unsigned long long>(
              outcome.metrics.scan.rows_from_raw),
          static_cast<unsigned long long>(
              outcome.metrics.scan.cache_block_hits),
          static_cast<unsigned long long>(state->map().evictions()),
          static_cast<unsigned long long>(state->cache().evictions()),
          static_cast<unsigned long long>(state->store().evictions()));
    }
  }

  const RawTableState* state = engine.table_state("adapt");
  std::printf(
      "\nshape: within an epoch queries speed up (warm structures, then "
      "store-served rows); at each epoch boundary the first query is "
      "slow again; total evictions map=%llu cache=%llu store=%llu show "
      "old epochs being dropped\n",
      static_cast<unsigned long long>(state->map().evictions()),
      static_cast<unsigned long long>(state->cache().evictions()),
      static_cast<unsigned long long>(state->store().evictions()));
  return 0;
}
