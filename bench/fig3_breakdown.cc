// Experiment E1 — Figure 3: the Query Execution Breakdown panel.
//
// Reproduces the demo's comparison of three systems answering the same
// query sequence over the same raw file:
//   PostgreSQL    — conventional load-first engine; its bar includes
//                   the (amortized) loading cost that NoDB eliminates,
//                   reported separately below.
//   Baseline      — naive external-files access: in-situ, but every
//                   query re-tokenizes and re-parses the whole file.
//   PostgresRaw   — in-situ with positional map + cache + statistics.
//
// The paper reports a stacked breakdown (Processing / IO / Convert /
// Parsing / Tokenizing / NoDB); this bench prints the same categories
// per system, cold (Q1) and warm (Q5), plus a CSV block for plotting.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "monitor/panel.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr uint64_t kTuples = 150000;
constexpr uint32_t kAttrs = 50;  // 7.5M fields, the demo's data shape
constexpr int kQueries = 5;

std::string QuerySql(int i) {
  // Select-Project over 5 mid-file attributes, shifting the predicate
  // so each query does real work but touches the same attribute set.
  int threshold = 20000000 + i * 10000000;
  return "SELECT attr20, attr22, attr24, attr26, SUM(attr28) AS s "
         "FROM fig3 WHERE attr24 < " +
         std::to_string(threshold) +
         " GROUP BY attr20, attr22, attr24, attr26 LIMIT 100";
}

}  // namespace

int main() {
  PrintHeader(
      "E1 / Figure 3 - query execution breakdown "
      "(PostgreSQL vs Baseline vs PostgresRaw)");
  Workload w = MakeIntWorkload("fig3", kTuples, kAttrs);
  std::printf("raw file: %" PRIu64 " tuples x %u attributes, %s\n\n",
              kTuples, kAttrs, FormatBytes(w.file_bytes).c_str());

  // --- PostgreSQL (conventional): load once, then query.
  LoadFirstEngine postgres(w.catalog, LoadProfile::kPostgres);
  int64_t load_ns = CheckOk(postgres.Initialize(), "load");
  std::vector<QueryMetrics> pg_metrics;
  for (int q = 0; q < kQueries; ++q) {
    auto outcome = CheckOk(postgres.Execute(QuerySql(q)), "postgres query");
    pg_metrics.push_back(outcome.metrics);
  }

  // --- Baseline: external files, no auxiliary structures.
  NoDbEngine baseline(w.catalog, NoDbConfig::Baseline(), "Baseline");
  std::vector<QueryMetrics> base_metrics;
  for (int q = 0; q < kQueries; ++q) {
    auto outcome = CheckOk(baseline.Execute(QuerySql(q)), "baseline query");
    base_metrics.push_back(outcome.metrics);
  }

  // --- PostgresRaw: map + cache + stats.
  NoDbEngine raw(w.catalog, NoDbConfig(), "PostgresRaw");
  std::vector<QueryMetrics> raw_metrics;
  for (int q = 0; q < kQueries; ++q) {
    auto outcome = CheckOk(raw.Execute(QuerySql(q)), "postgresraw query");
    raw_metrics.push_back(outcome.metrics);
  }

  std::printf("--- first query (cold) ---\n");
  std::printf("%s", MonitorPanel::RenderBreakdown("PostgreSQL (post-load)",
                                                  pg_metrics[0])
                        .c_str());
  std::printf("%s",
              MonitorPanel::RenderBreakdown("Baseline", base_metrics[0])
                  .c_str());
  std::printf("%s", MonitorPanel::RenderBreakdown("PostgresRaw (PM+C)",
                                                  raw_metrics[0])
                        .c_str());
  std::printf("(PostgreSQL additionally spent %s loading before Q1)\n",
              FormatNanos(load_ns).c_str());

  std::printf("\n--- fifth query (warm/adapted) ---\n");
  std::printf("%s", MonitorPanel::RenderBreakdown(
                        "PostgreSQL (post-load)", pg_metrics[kQueries - 1])
                        .c_str());
  std::printf("%s", MonitorPanel::RenderBreakdown("Baseline",
                                                  base_metrics[kQueries - 1])
                        .c_str());
  std::printf("%s", MonitorPanel::RenderBreakdown("PostgresRaw (PM+C)",
                                                  raw_metrics[kQueries - 1])
                        .c_str());

  std::printf("\n--- per-query series (CSV) ---\n%s\n",
              MonitorPanel::BreakdownCsvHeader().c_str());
  for (int q = 0; q < kQueries; ++q) {
    std::printf("%s\n", MonitorPanel::BreakdownCsvRow(
                            "PostgreSQL.q" + std::to_string(q + 1),
                            pg_metrics[q])
                            .c_str());
  }
  for (int q = 0; q < kQueries; ++q) {
    std::printf("%s\n", MonitorPanel::BreakdownCsvRow(
                            "Baseline.q" + std::to_string(q + 1),
                            base_metrics[q])
                            .c_str());
  }
  for (int q = 0; q < kQueries; ++q) {
    std::printf("%s\n", MonitorPanel::BreakdownCsvRow(
                            "PostgresRaw.q" + std::to_string(q + 1),
                            raw_metrics[q])
                            .c_str());
  }

  // Figure-3 shape checks, reported for EXPERIMENTS.md.
  double base_q1 = static_cast<double>(base_metrics[0].total_ns);
  double raw_q5 = static_cast<double>(raw_metrics[kQueries - 1].total_ns);
  std::printf(
      "\nshape: PostgresRaw warm vs Baseline = %.1fx faster; "
      "load alone = %.1fx a Baseline query\n",
      base_q1 / raw_q5,
      static_cast<double>(load_ns) / base_q1);
  return 0;
}
