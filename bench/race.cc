// Experiment E4 — §4.3 The Friendly Race, plus concurrent serving.
//
// Part 1 (the paper's race): all contestants receive the same raw
// files, the same schema and the same 10-query workload; nothing is
// loaded in advance. Conventional engines must load (and, per profile,
// convert/index/tune) before their first answer; PostgresRaw starts
// answering immediately. The metric is the *data-to-query time*: when
// does each query's answer arrive, counted from the starting shot.
//
// Part 2 (beyond the paper): multi-client throughput over one shared
// adaptive state. N client sessions pull queries from a batch against
// the same table — cold (structures built while serving) and warm
// (map/cache resident) — reporting queries/sec per client count and
// the peak number of queries genuinely in flight.
//
// Usage: race [rows] [batch_queries] [max_clients]
//   defaults: 120000 rows, 32 queries per batch, 8 clients
//   (CI smoke runs a tiny scale, e.g. `race 8000 16 4`).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "monitor/panel.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

std::vector<std::string> Workload10() {
  // The demo's motivating use case: a user skimming new data. Odd
  // queries are quick exploratory peeks (LIMIT stops the scan early);
  // even queries are full-scan aggregates over a couple of attributes.
  std::vector<std::string> queries;
  for (int q = 0; q < 10; ++q) {
    int a = (q * 3) % 18;
    if (q % 2 == 0) {
      queries.push_back(
          "SELECT COUNT(*) AS n, SUM(attr" + std::to_string(a) +
          ") AS s FROM race WHERE attr" + std::to_string(a + 1) + " < " +
          std::to_string(10000000 * (q + 1)));
    } else {
      queries.push_back(
          "SELECT attr" + std::to_string(a) + ", attr" +
          std::to_string(a + 1) + " FROM race WHERE attr" +
          std::to_string(a) + " < " + std::to_string(10000000 * (q + 1)) +
          " LIMIT 100");
    }
  }
  return queries;
}

struct Lane {
  std::string name;
  int64_t init_ns = 0;
  std::vector<int64_t> answer_at_ns;  // cumulative time of each answer
};

Lane RunLane(Engine* engine, const std::vector<std::string>& queries) {
  Lane lane;
  lane.name = std::string(engine->name());
  Stopwatch shot;
  int64_t init = CheckOk(engine->Initialize(), "init");
  (void)init;
  lane.init_ns = shot.ElapsedNanos();
  for (const auto& sql : queries) {
    CheckOk(engine->Execute(sql).status(), "query");
    lane.answer_at_ns.push_back(shot.ElapsedNanos());
  }
  return lane;
}

/// Builds a `count`-query batch of mixed peeks and aggregates over the
/// shared table — the shape of many users exploring the same new data.
std::vector<std::string> ConcurrentWorkload(size_t count) {
  std::vector<std::string> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    int a = static_cast<int>((q * 5) % 18);
    switch (q % 3) {
      case 0:
        queries.push_back(
            "SELECT COUNT(*) AS n, SUM(attr" + std::to_string(a) +
            ") AS s FROM race WHERE attr" + std::to_string(a + 1) +
            " < " + std::to_string(40000000 + 10000000 * (q % 7)));
        break;
      case 1:
        queries.push_back(
            "SELECT MIN(attr" + std::to_string(a) + ") AS lo, MAX(attr" +
            std::to_string(a + 1) + ") AS hi FROM race");
        break;
      default:
        queries.push_back(
            "SELECT attr" + std::to_string(a) + ", attr" +
            std::to_string(a + 1) + " FROM race WHERE attr" +
            std::to_string(a) + " < " +
            std::to_string(20000000 * (1 + q % 4)) + " LIMIT 200");
        break;
    }
  }
  return queries;
}

void RunConcurrentServing(const Workload& w, size_t batch_queries,
                          uint32_t max_clients) {
  PrintHeader("E4b / concurrent serving - shared adaptive state");
  std::printf(
      "%zu-query batch per run; every run gets a fresh engine (cold), "
      "then repeats the batch warm\n\n",
      batch_queries);
  auto batch = ConcurrentWorkload(batch_queries);

  std::printf("%8s %12s %12s %12s %10s %10s\n", "clients", "cold q/s",
              "warm q/s", "warm wall", "inflight", "failures");
  double serial_warm_qps = 0;
  double best_warm_qps = 0;
  uint32_t best_inflight = 1;
  for (uint32_t clients = 1; clients <= max_clients; clients *= 2) {
    NoDbEngine engine(w.catalog, NoDbConfig(), "PostgresRaw");
    ConcurrentBatchOutcome cold = engine.ExecuteConcurrent(batch, clients);
    ConcurrentBatchOutcome warm = engine.ExecuteConcurrent(batch, clients);
    if (clients == 1) serial_warm_qps = warm.queries_per_second();
    if (warm.queries_per_second() > best_warm_qps) {
      best_warm_qps = warm.queries_per_second();
    }
    uint32_t inflight =
        std::max(cold.peak_in_flight(), warm.peak_in_flight());
    if (inflight > best_inflight) best_inflight = inflight;
    std::printf("%8u %12.1f %12.1f %12s %10u %10llu\n", clients,
                cold.queries_per_second(), warm.queries_per_second(),
                FormatNanos(warm.wall_ns).c_str(), inflight,
                static_cast<unsigned long long>(cold.failures() +
                                                warm.failures()));
    if (clients * 2 > max_clients) {  // last iteration of the sweep
      std::printf("\n%s\n",
                  MonitorPanel::RenderConcurrentBatch(warm).c_str());
    }
    std::printf("csv: concurrent,%u,%.3f,%.3f,%u\n", clients,
                cold.queries_per_second(), warm.queries_per_second(),
                inflight);
  }
  std::printf(
      "peak queries in flight: %u (%s); warm throughput vs serial: "
      "%.2fx\n",
      best_inflight,
      best_inflight > 1 ? "concurrent serving confirmed"
                        : "no overlap observed",
      serial_warm_qps > 0 ? best_warm_qps / serial_warm_qps : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;
  size_t batch_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  uint32_t max_clients = argc > 3
                             ? static_cast<uint32_t>(
                                   std::strtoul(argv[3], nullptr, 10))
                             : 8;
  if (rows == 0) rows = 120000;
  if (batch_queries == 0) batch_queries = 32;
  if (max_clients == 0) max_clients = 8;

  PrintHeader("E4 / friendly race - data-to-query time");
  Workload w = MakeIntWorkload("race", rows, 20);
  std::printf("raw input: %s; 10-query workload; nothing pre-loaded\n",
              FormatBytes(w.file_bytes).c_str());

  auto queries = Workload10();
  std::vector<Lane> lanes;

  NoDbEngine raw(w.catalog, NoDbConfig(), "PostgresRaw");
  lanes.push_back(RunLane(&raw, queries));
  LoadFirstEngine pg(w.catalog, LoadProfile::kPostgres);
  lanes.push_back(RunLane(&pg, queries));
  LoadFirstEngine my(w.catalog, LoadProfile::kMySql);
  lanes.push_back(RunLane(&my, queries));
  LoadFirstEngine dx(w.catalog, LoadProfile::kDbmsX);
  lanes.push_back(RunLane(&dx, queries));

  std::printf("\n%-14s %12s", "system", "init");
  for (size_t q = 1; q <= queries.size(); ++q) {
    std::printf(" %8s", ("q" + std::to_string(q)).c_str());
  }
  std::printf("   total\n");
  for (const Lane& lane : lanes) {
    std::printf("%-14s %12s", lane.name.c_str(),
                FormatNanos(lane.init_ns).c_str());
    for (int64_t t : lane.answer_at_ns) {
      std::printf(" %8s", FormatNanos(t).c_str());
    }
    std::printf(" %8s\n",
                FormatNanos(lane.answer_at_ns.back()).c_str());
  }

  // How many answers had PostgresRaw produced before each loader
  // finished initializing?
  std::printf("\n");
  for (size_t i = 1; i < lanes.size(); ++i) {
    size_t answered = 0;
    for (int64_t t : lanes[0].answer_at_ns) {
      if (t < lanes[i].init_ns) ++answered;
    }
    std::printf(
        "PostgresRaw had answered %zu/%zu queries before %s finished "
        "loading\n",
        answered, queries.size(), lanes[i].name.c_str());
  }

  std::printf("\ncsv: system,init_ns");
  for (size_t q = 1; q <= queries.size(); ++q) std::printf(",q%zu_ns", q);
  std::printf("\n");
  for (const Lane& lane : lanes) {
    std::printf("csv: %s,%lld", lane.name.c_str(),
                static_cast<long long>(lane.init_ns));
    for (int64_t t : lane.answer_at_ns) {
      std::printf(",%lld", static_cast<long long>(t));
    }
    std::printf("\n");
  }

  std::printf("\n");
  RunConcurrentServing(w, batch_queries, max_clients);
  return 0;
}
