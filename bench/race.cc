// Experiment E4 — §4.3 The Friendly Race.
//
// All contestants receive the same raw files, the same schema and the
// same 10-query workload; nothing is loaded in advance. Conventional
// engines must load (and, per profile, convert/index/tune) before their
// first answer; PostgresRaw starts answering immediately. The metric is
// the *data-to-query time*: when does each query's answer arrive,
// counted from the starting shot.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

std::vector<std::string> Workload10() {
  // The demo's motivating use case: a user skimming new data. Odd
  // queries are quick exploratory peeks (LIMIT stops the scan early);
  // even queries are full-scan aggregates over a couple of attributes.
  std::vector<std::string> queries;
  for (int q = 0; q < 10; ++q) {
    int a = (q * 3) % 18;
    if (q % 2 == 0) {
      queries.push_back(
          "SELECT COUNT(*) AS n, SUM(attr" + std::to_string(a) +
          ") AS s FROM race WHERE attr" + std::to_string(a + 1) + " < " +
          std::to_string(10000000 * (q + 1)));
    } else {
      queries.push_back(
          "SELECT attr" + std::to_string(a) + ", attr" +
          std::to_string(a + 1) + " FROM race WHERE attr" +
          std::to_string(a) + " < " + std::to_string(10000000 * (q + 1)) +
          " LIMIT 100");
    }
  }
  return queries;
}

struct Lane {
  std::string name;
  int64_t init_ns = 0;
  std::vector<int64_t> answer_at_ns;  // cumulative time of each answer
};

Lane RunLane(Engine* engine, const std::vector<std::string>& queries) {
  Lane lane;
  lane.name = std::string(engine->name());
  Stopwatch shot;
  int64_t init = CheckOk(engine->Initialize(), "init");
  (void)init;
  lane.init_ns = shot.ElapsedNanos();
  for (const auto& sql : queries) {
    CheckOk(engine->Execute(sql).status(), "query");
    lane.answer_at_ns.push_back(shot.ElapsedNanos());
  }
  return lane;
}

}  // namespace

int main() {
  PrintHeader("E4 / friendly race - data-to-query time");
  Workload w = MakeIntWorkload("race", 120000, 20);
  std::printf("raw input: %s; 10-query workload; nothing pre-loaded\n",
              FormatBytes(w.file_bytes).c_str());

  auto queries = Workload10();
  std::vector<Lane> lanes;

  NoDbEngine raw(w.catalog, NoDbConfig(), "PostgresRaw");
  lanes.push_back(RunLane(&raw, queries));
  LoadFirstEngine pg(w.catalog, LoadProfile::kPostgres);
  lanes.push_back(RunLane(&pg, queries));
  LoadFirstEngine my(w.catalog, LoadProfile::kMySql);
  lanes.push_back(RunLane(&my, queries));
  LoadFirstEngine dx(w.catalog, LoadProfile::kDbmsX);
  lanes.push_back(RunLane(&dx, queries));

  std::printf("\n%-14s %12s", "system", "init");
  for (size_t q = 1; q <= queries.size(); ++q) {
    std::printf(" %8s", ("q" + std::to_string(q)).c_str());
  }
  std::printf("   total\n");
  for (const Lane& lane : lanes) {
    std::printf("%-14s %12s", lane.name.c_str(),
                FormatNanos(lane.init_ns).c_str());
    for (int64_t t : lane.answer_at_ns) {
      std::printf(" %8s", FormatNanos(t).c_str());
    }
    std::printf(" %8s\n",
                FormatNanos(lane.answer_at_ns.back()).c_str());
  }

  // How many answers had PostgresRaw produced before each loader
  // finished initializing?
  std::printf("\n");
  for (size_t i = 1; i < lanes.size(); ++i) {
    size_t answered = 0;
    for (int64_t t : lanes[0].answer_at_ns) {
      if (t < lanes[i].init_ns) ++answered;
    }
    std::printf(
        "PostgresRaw had answered %zu/%zu queries before %s finished "
        "loading\n",
        answered, queries.size(), lanes[i].name.c_str());
  }

  std::printf("\ncsv: system,init_ns");
  for (size_t q = 1; q <= queries.size(); ++q) std::printf(",q%zu_ns", q);
  std::printf("\n");
  for (const Lane& lane : lanes) {
    std::printf("csv: %s,%lld", lane.name.c_str(),
                static_cast<long long>(lane.init_ns));
    for (int64_t t : lane.answer_at_ns) {
      std::printf(",%lld", static_cast<long long>(t));
    }
    std::printf("\n");
  }
  return 0;
}
