// Server front-end bench: loopback wire-protocol throughput and
// fidelity.
//
// Starts a real Server on an ephemeral loopback port, runs the same
// mixed workload once in-process (the reference) and then from N
// concurrent ClientConnections, and gates on two properties:
//
//   1. identity — every remote result must render byte-identically to
//      the in-process result for the same SQL (the wire adds transport,
//      never semantics);
//   2. throughput — with warm adaptive state the server must sustain
//      at least 1000 queries/sec across clients (the wire protocol and
//      admission control must not dominate over query execution).
//
// Usage: server_bench [rows] [clients] [queries] [min_qps]
//   defaults: 2000 rows, 4 clients, 1200 timed queries, 1000 q/s gate
//   (CI smoke runs the defaults: `server_bench 2000 4 1200`).
//
// The default scale clears the gate with ~40% headroom even on a
// single-core container; the bottleneck at this scale is the two
// full-scan aggregates in the mix, not the wire.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// The workload leans on the demo's exploratory shape: mostly quick
/// peeks that stop the scan early, with a few full-scan aggregates so
/// the identity gate also covers multi-type aggregation frames.
std::vector<std::string> DistinctQueries() {
  std::vector<std::string> queries;
  for (int q = 0; q < 10; ++q) {
    int a = (q * 3) % 7;
    queries.push_back("SELECT attr" + std::to_string(a) + ", attr" +
                      std::to_string(a + 1) + " FROM bench WHERE attr" +
                      std::to_string(a) + " >= 0 LIMIT " +
                      std::to_string(10 + q));
  }
  queries.push_back("SELECT COUNT(*) AS n, SUM(attr0) AS s FROM bench");
  queries.push_back(
      "SELECT MIN(attr2) AS lo, MAX(attr3) AS hi FROM bench");
  return queries;
}

struct ClientOutcome {
  uint64_t ok = 0;
  uint64_t mismatches = 0;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  uint32_t clients =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 4;
  uint64_t total_queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1200;
  double min_qps = argc > 4 ? std::strtod(argv[4], nullptr) : 1000.0;
  if (rows == 0) rows = 2000;
  if (clients == 0) clients = 4;
  if (total_queries == 0) total_queries = 1200;

  PrintHeader("server front end - loopback throughput and fidelity");
  Workload w = MakeIntWorkload("bench", rows, 8);
  std::printf("raw input: %s; %u clients; %llu timed queries\n",
              FormatBytes(w.file_bytes).c_str(), clients,
              static_cast<unsigned long long>(total_queries));

  const std::vector<std::string> distinct = DistinctQueries();

  // In-process reference renderings (also warms nothing the server
  // shares: the server gets its own engine over the same raw file).
  std::map<std::string, std::string> reference;
  {
    NoDbEngine local(w.catalog, NoDbConfig(), "PostgresRaw");
    for (const auto& sql : distinct) {
      QueryOutcome outcome = CheckOk(local.Execute(sql), "reference query");
      reference[sql] = outcome.result.ToString(1 << 20);
    }
  }

  NoDbConfig config;
  config.server_max_in_flight = clients;
  config.server_tenant_max_concurrent = clients;
  NoDbEngine engine(w.catalog, config, "PostgresRaw");
  server::Server server(&engine, config);
  CheckOk(server.Start(), "server start");

  std::vector<server::ClientConnection> conns;
  conns.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    conns.push_back(CheckOk(
        server::ClientConnection::Connect("127.0.0.1", server.port(),
                                          "bench", "c" +
                                              std::to_string(c)),
        "connect"));
  }

  // Warm-up: every distinct query once per client, checked for
  // identity. This both populates the adaptive state (positional map,
  // raw cache) and front-loads the fidelity gate before timing starts.
  for (uint32_t c = 0; c < clients; ++c) {
    for (const auto& sql : distinct) {
      auto outcome = CheckOk(conns[c].Execute(sql), "warm-up query");
      if (outcome.result.ToString(1 << 20) != reference[sql]) {
        std::fprintf(stderr, "FAIL: warm-up result mismatch for %s\n",
                     sql.c_str());
        return 1;
      }
    }
  }

  // Timed phase: clients pull from a shared cursor so stragglers never
  // idle the others (the same work-stealing shape ExecuteConcurrent
  // uses internally).
  std::atomic<uint64_t> cursor{0};
  std::vector<ClientOutcome> outcomes(clients);
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientOutcome& mine = outcomes[c];
      for (;;) {
        uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_queries) return;
        const std::string& sql = distinct[i % distinct.size()];
        auto outcome = conns[c].Execute(sql);
        if (!outcome.ok()) {
          if (mine.first_error.empty()) {
            mine.first_error = outcome.status().ToString();
          }
          return;
        }
        if (outcome->result.ToString(1 << 20) != reference[sql]) {
          ++mine.mismatches;
        } else {
          ++mine.ok;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall_s = static_cast<double>(wall.ElapsedNanos()) / 1e9;

  uint64_t ok = 0;
  uint64_t mismatches = 0;
  for (uint32_t c = 0; c < clients; ++c) {
    ok += outcomes[c].ok;
    mismatches += outcomes[c].mismatches;
    if (!outcomes[c].first_error.empty()) {
      std::fprintf(stderr, "FAIL: client %u: %s\n", c,
                   outcomes[c].first_error.c_str());
      return 1;
    }
  }
  const double qps = wall_s > 0 ? static_cast<double>(ok) / wall_s : 0;

  server::ServerStats stats = server.Stats();
  std::printf(
      "warm: %llu queries in %.3f s -> %.1f q/s across %u clients "
      "(admitted %llu, rejected %llu)\n",
      static_cast<unsigned long long>(ok), wall_s, qps, clients,
      static_cast<unsigned long long>(stats.admitted_total),
      static_cast<unsigned long long>(stats.rejected_total));
  std::printf("csv: server,%llu,%u,%llu,%.3f,%.1f,%llu\n",
              static_cast<unsigned long long>(rows), clients,
              static_cast<unsigned long long>(ok), wall_s, qps,
              static_cast<unsigned long long>(mismatches));

  for (auto& conn : conns) conn.Close();
  server.RequestShutdown();
  CheckOk(server.Shutdown(), "server shutdown");

  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu remote results diverged from in-process "
                 "execution\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  if (qps < min_qps) {
    std::fprintf(stderr,
                 "FAIL: warm throughput %.1f q/s is under the %.0f q/s "
                 "gate\n",
                 qps, min_qps);
    return 1;
  }
  std::printf("identity gate passed; throughput gate passed (>= %.0f "
              "q/s)\n",
              min_qps);
  return 0;
}
