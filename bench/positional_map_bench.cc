// Experiment E6 — positional-map ablation (google-benchmark).
//
// Measures the paper's §3.1 claims directly:
//   - without a map, per-tuple tokenizing cost grows with the target
//     attribute's position in the tuple;
//   - with a warm map, cost is (nearly) position-independent;
//   - shrinking the map budget degrades gracefully via LRU.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "exec/query_result.h"
#include "raw/raw_scan.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr uint64_t kTuples = 20000;
constexpr uint32_t kAttrs = 40;

Workload& SharedWorkload() {
  static Workload* workload =
      new Workload(MakeIntWorkload("map", kTuples, kAttrs));
  return *workload;
}

RawTableInfo Info() {
  Workload& w = SharedWorkload();
  return {"map", w.path, w.schema, CsvDialect()};
}

void DrainScan(RawTableState* state, uint32_t attr) {
  RawScanOperator scan(state, {attr}, nullptr);
  auto result = QueryResult::Drain(&scan);
  CheckOk(result.status(), "scan");
  if (result->num_rows() != kTuples) std::abort();
}

/// Cold in-situ access (map disabled): cost grows with attribute
/// position because every tuple is tokenized from byte 0.
void BM_ScanWithoutMap(benchmark::State& state) {
  NoDbConfig config = NoDbConfig::Baseline();
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  uint32_t attr = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    DrainScan(&table, attr);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_ScanWithoutMap)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(39)
    ->Unit(benchmark::kMillisecond);

/// Warm positional map (cache off to isolate the map): cost is flat in
/// attribute position.
void BM_ScanWithWarmMap(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  uint32_t attr = static_cast<uint32_t>(state.range(0));
  DrainScan(&table, attr);  // warm-up builds the chunks
  for (auto _ : state) {
    DrainScan(&table, attr);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_ScanWithWarmMap)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(39)
    ->Unit(benchmark::kMillisecond);

/// Neighbouring-attribute access with a warm map for attr N: anchors
/// let the scan jump to N+1 and tokenize a single field.
void BM_ScanNeighbourViaAnchor(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  DrainScan(&table, 25);  // warm attr 25
  for (auto _ : state) {
    // 26 is never indexed itself (a fresh chunk would be built on the
    // first pass and then reused; both paths beat blind tokenizing).
    DrainScan(&table, 26);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_ScanNeighbourViaAnchor)->Unit(benchmark::kMillisecond);

/// Budget sweep: 0 disables retention entirely (every chunk is evicted
/// on commit); growing budgets approach the fully-warm cost.
void BM_MapBudgetSweep(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  config.positional_map_budget = static_cast<size_t>(state.range(0));
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  DrainScan(&table, 30);  // warm as far as the budget allows
  for (auto _ : state) {
    DrainScan(&table, 30);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_MapBudgetSweep)
    ->Arg(0)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(8 << 20)
    ->Unit(benchmark::kMillisecond);

/// Row-block granularity ablation: the chunk/cache unit shared by map
/// and cache. Tiny blocks mean more chunk objects and plan rebuilds;
/// huge blocks waste work on partially-used tails.
void BM_BlockSizeSweep(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  config.rows_per_block = static_cast<uint32_t>(state.range(0));
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  DrainScan(&table, 20);
  for (auto _ : state) {
    DrainScan(&table, 20);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
  state.counters["chunks"] = static_cast<double>(table.map().num_chunks());
}
BENCHMARK(BM_BlockSizeSweep)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

/// Distance-policy ablation (§3.1 "Adaptive Behavior"): after warming
/// two disjoint combinations, a query spanning both either re-indexes
/// its combination (max_covering_chunks = 1, the paper's default) or
/// tolerates gathering from two chunks (laxer setting). Indexing costs
/// once and pays on every later query; tolerating avoids the build but
/// probes two chunks forever.
void BM_DistancePolicy(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  config.max_covering_chunks = static_cast<uint32_t>(state.range(0));
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  // Two disjoint warm combinations...
  {
    RawScanOperator a(&table, {5, 6}, nullptr);
    CheckOk(QueryResult::Drain(&a).status(), "warm a");
    RawScanOperator b(&table, {30, 31}, nullptr);
    CheckOk(QueryResult::Drain(&b).status(), "warm b");
  }
  // ...then a spanning query, repeatedly.
  std::vector<uint32_t> spanning = {5, 30};
  {
    RawScanOperator scan(&table, spanning, nullptr);
    CheckOk(QueryResult::Drain(&scan).status(), "first spanning");
  }
  for (auto _ : state) {
    RawScanOperator scan(&table, spanning, nullptr);
    CheckOk(QueryResult::Drain(&scan).status(), "spanning");
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
  state.counters["chunks"] = static_cast<double>(table.map().num_chunks());
}
BENCHMARK(BM_DistancePolicy)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
