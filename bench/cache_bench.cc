// Experiment E7 — cache ablation (google-benchmark).
//
// §3.2: repeated access to hot attributes is served from the binary
// cache, eliminating tokenizing, parsing *and* raw-file I/O. The
// budget sweep shows graceful degradation when the hot set does not
// fit.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/query_result.h"
#include "raw/raw_scan.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr uint64_t kTuples = 20000;
constexpr uint32_t kAttrs = 20;

Workload& SharedWorkload() {
  static Workload* workload =
      new Workload(MakeIntWorkload("cache", kTuples, kAttrs));
  return *workload;
}

RawTableInfo Info() {
  Workload& w = SharedWorkload();
  return {"cache", w.path, w.schema, CsvDialect()};
}

void DrainScan(RawTableState* state,
               const std::vector<uint32_t>& attrs) {
  RawScanOperator scan(state, attrs, nullptr);
  auto result = QueryResult::Drain(&scan);
  CheckOk(result.status(), "scan");
}

/// Hot two-attribute scan with the cache off: every query re-parses.
void BM_HotScanNoCache(benchmark::State& state) {
  NoDbConfig config;
  config.enable_cache = false;
  config.enable_statistics = false;
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  DrainScan(&table, {3, 7});  // warm the map only
  for (auto _ : state) {
    DrainScan(&table, {3, 7});
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_HotScanNoCache)->Unit(benchmark::kMillisecond);

/// The same scan fully cache-served.
void BM_HotScanWarmCache(benchmark::State& state) {
  NoDbConfig config;
  config.enable_statistics = false;
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  DrainScan(&table, {3, 7});  // warm map + cache
  for (auto _ : state) {
    DrainScan(&table, {3, 7});
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_HotScanWarmCache)->Unit(benchmark::kMillisecond);

/// Budget sweep over a 4-attribute hot set (~1.5 MiB binary): small
/// budgets thrash, larger ones converge to the warm-cache cost.
void BM_CacheBudgetSweep(benchmark::State& state) {
  NoDbConfig config;
  config.enable_statistics = false;
  config.cache_budget = static_cast<size_t>(state.range(0));
  RawTableState table(Info(), config);
  CheckOk(table.Open(), "open");
  std::vector<uint32_t> hot = {1, 5, 9, 13};
  DrainScan(&table, hot);
  for (auto _ : state) {
    DrainScan(&table, hot);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
  state.counters["hit_blocks"] = static_cast<double>(
      table.cache().hits());
  state.counters["evictions"] =
      static_cast<double>(table.cache().evictions());
}
BENCHMARK(BM_CacheBudgetSweep)
    ->Arg(0)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Arg(16 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
