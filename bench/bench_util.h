#ifndef NODB_BENCH_BENCH_UTIL_H_
#define NODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "io/temp_dir.h"
#include "util/result.h"
#include "util/string_util.h"

namespace nodb::bench {

/// Aborts with a message when a Status/Result is not OK — benches have
/// no meaningful recovery path.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Generates the demo's default workload file: `tuples` rows of
/// `attrs` zero-padded integer attributes (the shape PostgresRaw's
/// Figure-3 experiment uses), registered as table `name`.
struct Workload {
  TempDir dir;
  Catalog catalog;
  std::shared_ptr<Schema> schema;
  std::string path;
  uint64_t file_bytes = 0;
};

inline Workload MakeIntWorkload(const std::string& name, uint64_t tuples,
                                uint32_t attrs, uint32_t width = 8,
                                uint64_t seed = 42) {
  Workload w{CheckOk(TempDir::Create("nodb-bench"), "temp dir"), {}, {},
             {}, 0};
  SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = attrs;
  spec.attribute_width = width;
  spec.seed = seed;
  w.schema = spec.MakeSchema();
  w.path = w.dir.FilePath(name + ".csv");
  w.file_bytes =
      CheckOk(GenerateSyntheticCsv(w.path, spec, CsvDialect()), "generate");
  CheckOk(w.catalog.RegisterTable({name, w.path, w.schema, CsvDialect()}),
          "register");
  return w;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================\n");
}

}  // namespace nodb::bench

#endif  // NODB_BENCH_BENCH_UTIL_H_
