#ifndef NODB_BENCH_BENCH_UTIL_H_
#define NODB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "simd/structural_index.h"
#include "util/result.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace nodb::bench {

/// Aborts with a message when a Status/Result is not OK — benches have
/// no meaningful recovery path.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Generates the demo's default workload file: `tuples` rows of
/// `attrs` zero-padded integer attributes (the shape PostgresRaw's
/// Figure-3 experiment uses), registered as table `name`.
struct Workload {
  TempDir dir;
  Catalog catalog;
  std::shared_ptr<Schema> schema;
  std::string path;
  uint64_t file_bytes = 0;
};

inline Workload MakeIntWorkload(const std::string& name, uint64_t tuples,
                                uint32_t attrs, uint32_t width = 8,
                                uint64_t seed = 42) {
  Workload w{CheckOk(TempDir::Create("nodb-bench"), "temp dir"), {}, {},
             {}, 0};
  SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = attrs;
  spec.attribute_width = width;
  spec.seed = seed;
  w.schema = spec.MakeSchema();
  w.path = w.dir.FilePath(name + ".csv");
  w.file_bytes =
      CheckOk(GenerateSyntheticCsv(w.path, spec, CsvDialect()), "generate");
  CheckOk(w.catalog.RegisterTable({name, w.path, w.schema, CsvDialect()}),
          "register");
  return w;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================\n");
}

/// Best-of-three structural-indexing throughput (bytes/s) over `data`
/// at `level`, processed in read-buffer-sized slabs exactly like the
/// first-touch scan's stage 1.
inline double StructuralScanBps(const std::string& data,
                                const CsvDialect& dialect,
                                simd::SimdLevel level) {
  const simd::StructuralIndexer indexer(dialect, level);
  simd::StructuralIndex index;
  constexpr size_t kSlab = size_t{1} << 20;
  double best_ns = 1e30;
  uint64_t sink = 0;  // keep the index observably live
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    for (size_t offset = 0; offset < data.size(); offset += kSlab) {
      indexer.Index(data.data() + offset,
                    std::min(kSlab, data.size() - offset), offset, &index);
      sink += index.newlines.size() + index.delims.size();
    }
    best_ns = std::min(best_ns, static_cast<double>(watch.ElapsedNanos()));
  }
  if (sink == 0) std::printf("(structural scan found no structure)\n");
  if (best_ns <= 0) best_ns = 1;
  return static_cast<double>(data.size()) / best_ns * 1e9;
}

/// The tentpole's hard perf gate: stage-1 structural indexing of `path`
/// with the active SIMD tier must beat the scalar fallback kernels by
/// `min_ratio` (the cold first-touch component the SIMD layer owns).
/// Prints both throughputs; exits non-zero under the gate. Skipped —
/// with a note — when no SIMD tier is available (scalar-only build or
/// exotic CPU), since there is nothing to compare.
inline void GateStructuralSpeedup(const std::string& path,
                                  const CsvDialect& dialect,
                                  double min_ratio) {
  const simd::SimdLevel active = simd::ActiveLevel();
  if (active == simd::SimdLevel::kScalar) {
    std::printf(
        "structural scan: no SIMD tier available (scalar build) — "
        "speedup gate skipped\n");
    return;
  }
  const std::string data = CheckOk(ReadFileToString(path), "read raw file");
  const double simd_bps = StructuralScanBps(data, dialect, active);
  const double scalar_bps =
      StructuralScanBps(data, dialect, simd::SimdLevel::kScalar);
  const double ratio = scalar_bps > 0 ? simd_bps / scalar_bps : 0;
  std::printf(
      "structural scan: %s %.2f GB/s vs scalar %.2f GB/s — %.1fx\n",
      simd::LevelName(active), simd_bps / 1e9, scalar_bps / 1e9, ratio);
  if (ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: structural-scan speedup %.2fx is under the %.1fx "
                 "gate\n",
                 ratio, min_ratio);
    std::exit(1);
  }
}

}  // namespace nodb::bench

#endif  // NODB_BENCH_BENCH_UTIL_H_
