// Experiment E9 — §3.3 on-the-fly statistics and plan quality.
//
// A workload whose WHERE mixes a cheap, highly selective numeric
// predicate with an expensive LIKE predicate. Without statistics the
// planner keeps source order (LIKE first → evaluated on every row);
// with statistics gathered as a side-effect of the *first* query, the
// numeric conjunct is ordered first and the LIKE only sees the
// survivors. Also reports the accuracy of the collected statistics.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

int main() {
  PrintHeader("E9 / on-the-fly statistics and predicate ordering");

  auto dir = CheckOk(TempDir::Create("nodb-stats"), "temp dir");
  SyntheticSpec spec;
  spec.num_tuples = 120000;
  spec.num_attributes = 6;
  spec.ints_per_cycle = 2;
  spec.strings_per_cycle = 1;
  spec.doubles_per_cycle = 0;
  spec.dates_per_cycle = 0;
  spec.attribute_width = 16;  // long strings make LIKE expensive
  std::string path = dir.FilePath("skewed.csv");
  CheckOk(GenerateSyntheticCsv(path, spec, CsvDialect()).status(),
          "generate");
  Catalog catalog;
  CheckOk(catalog.RegisterTable(
              {"skewed", path, spec.MakeSchema(), CsvDialect()}),
          "register");

  // attr0/attr1 INT, attr2 STRING, repeating. The LIKE pattern with a
  // leading wildcard must inspect whole strings; the numeric predicate
  // passes ~0.1% of rows.
  const std::string sql =
      "SELECT COUNT(*) AS n FROM skewed "
      "WHERE attr2 LIKE '%zz%' AND attr0 < 1000";

  auto run_engine = [&](bool stats_on) {
    NoDbConfig config;
    config.enable_statistics = stats_on;
    NoDbEngine engine(catalog, config,
                      stats_on ? "with-stats" : "no-stats");
    // Query 1 is identical for both: no statistics exist yet. It
    // builds map+cache (and, when enabled, statistics).
    auto q1 = CheckOk(engine.Execute(sql), "q1");
    // Query 2 runs over warm structures; only predicate order differs.
    auto q2 = CheckOk(engine.Execute(sql), "q2");
    auto q3 = CheckOk(engine.Execute(sql), "q3");
    std::printf(
        "%-11s q1 %8.2f ms   q2 %8.2f ms   q3 %8.2f ms   (n=%s)\n",
        std::string(engine.name()).c_str(), q1.metrics.total_ns / 1e6,
        q2.metrics.total_ns / 1e6, q3.metrics.total_ns / 1e6,
        q1.result.Row(0)[0].ToString().c_str());
    return q2.metrics.total_ns + q3.metrics.total_ns;
  };

  std::printf("\npredicate: LIKE-first in source order; selectivity of "
              "numeric conjunct ~0.1%%\n\n");
  int64_t without = run_engine(false);
  int64_t with = run_engine(true);
  std::printf(
      "\nshape: with statistics the warm queries run %.1fx faster "
      "(selective conjunct ordered first)\n",
      static_cast<double>(without) / static_cast<double>(with));

  // --- statistics accuracy report.
  NoDbConfig config;
  NoDbEngine engine(catalog, config);
  CheckOk(engine.Execute("SELECT attr0, attr1 FROM skewed LIMIT 1")
              .status(),
          "touch");
  CheckOk(engine.Execute("SELECT COUNT(*) FROM skewed WHERE attr0 > 0 "
                         "AND attr1 > 0")
              .status(),
          "full scan");
  const RawTableState* state = engine.table_state("skewed");
  const AttributeStats* stats = state->stats().GetStats(0);
  if (stats != nullptr) {
    std::printf(
        "\nattr0 statistics after 2 queries: rows=%llu nulls=%llu "
        "min=%.0f max=%.0f ndv~%.0f (domain=1000000)\n",
        static_cast<unsigned long long>(stats->row_count()),
        static_cast<unsigned long long>(stats->null_count()),
        stats->numeric_min().value_or(-1),
        stats->numeric_max().value_or(-1), stats->EstimateDistinct());
  }
  return 0;
}
