// Experiment E8 — selective tokenizing / parsing / tuple formation
// ablation (google-benchmark).
//
// §3: with row-oriented raw files, selective tokenizing cannot save
// I/O but slashes CPU cost. This bench quantifies each selectivity
// level on a wide-tuple file: full load (tokenize+parse everything,
// what a conventional loader does), selective parse of k attributes,
// and the dependence on attribute position.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engines/csv_loader.h"
#include "exec/query_result.h"
#include "raw/raw_scan.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr uint64_t kTuples = 10000;
constexpr uint32_t kAttrs = 60;

Workload& SharedWorkload() {
  static Workload* workload =
      new Workload(MakeIntWorkload("sel", kTuples, kAttrs));
  return *workload;
}

RawTableInfo Info() {
  Workload& w = SharedWorkload();
  return {"sel", w.path, w.schema, CsvDialect()};
}

/// Everything: the conventional loader tokenizes and converts all
/// kAttrs fields of every tuple.
void BM_FullTokenizeAndParse(benchmark::State& state) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    auto table = LoadCsv(w.path, w.schema, CsvDialect());
    CheckOk(table.status(), "load");
    benchmark::DoNotOptimize(table->get());
  }
  state.SetItemsProcessed(state.iterations() * kTuples * kAttrs);
}
BENCHMARK(BM_FullTokenizeAndParse)->Unit(benchmark::kMillisecond);

/// Selective: parse only the first `k` attributes (baseline config so
/// no auxiliary structures blur the ablation).
void BM_SelectiveParseKAttrs(benchmark::State& state) {
  RawTableState table(Info(), NoDbConfig::Baseline());
  CheckOk(table.Open(), "open");
  std::vector<uint32_t> attrs;
  for (int i = 0; i < state.range(0); ++i) {
    attrs.push_back(static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    RawScanOperator scan(&table, attrs, nullptr);
    auto result = QueryResult::Drain(&scan);
    CheckOk(result.status(), "scan");
  }
  state.SetItemsProcessed(state.iterations() * kTuples *
                          state.range(0));
}
BENCHMARK(BM_SelectiveParseKAttrs)
    ->Arg(1)
    ->Arg(5)
    ->Arg(20)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

/// Selective tokenizing aborts at the last needed attribute, so the
/// cost of "one attribute" depends on where it sits in the tuple.
void BM_SingleAttrByPosition(benchmark::State& state) {
  RawTableState table(Info(), NoDbConfig::Baseline());
  CheckOk(table.Open(), "open");
  std::vector<uint32_t> attrs = {static_cast<uint32_t>(state.range(0))};
  for (auto _ : state) {
    RawScanOperator scan(&table, attrs, nullptr);
    auto result = QueryResult::Drain(&scan);
    CheckOk(result.status(), "scan");
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_SingleAttrByPosition)
    ->Arg(0)
    ->Arg(15)
    ->Arg(30)
    ->Arg(59)
    ->Unit(benchmark::kMillisecond);

/// Selective tuple formation: COUNT(*)-style scans form no tuples at
/// all — only tuple boundaries are found.
void BM_RowCountOnly(benchmark::State& state) {
  RawTableState table(Info(), NoDbConfig::Baseline());
  CheckOk(table.Open(), "open");
  for (auto _ : state) {
    RawScanOperator scan(&table, {}, nullptr);
    auto result = QueryResult::Drain(&scan);
    CheckOk(result.status(), "scan");
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_RowCountOnly)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
