// Experiment E8 — selective parsing taken into the scan: predicate
// pushdown + per-block zone maps vs the FilterOperator-only plan.
//
// §3: with row-oriented raw files, selective tokenizing cannot save
// I/O but slashes CPU cost. Pushdown extends the idea to WHERE: per
// block only the predicate columns parse (phase 1), the remaining
// projection columns parse for qualifying rows only (phase 2), and
// zone maps skip blocks provably disjoint from the predicate without
// locating a single row. This driver sweeps selectivities
// {0.001, 0.01, 0.1, 1.0} of a range predicate over a *clustered*
// attribute and prints a CSV of four modes per selectivity:
//
//   off     enable_pushdown=false (FilterOperator above the scan)
//   push    pushdown on, zone maps off
//   zones   pushdown + zone maps on
//   scalar  zones plan on the scalar fallback kernels (enable_simd=off)
//
// Each mode runs the query three times against its own engine — cold
// (raw), warm (cache), and store-warm (after WaitForPromotions) — and
// every run's rows are verified byte-identical to the mode-off plan,
// so the CSV doubles as a correctness check across all three storage
// tiers. Exits non-zero on any mismatch, or if the 0.001-selectivity
// zones run fails to skip at least half the blocks once warm.
//
// Usage: selective_bench [tuples]   (default 200000; CI smoke passes
// less)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr uint32_t kPayloadCols = 6;

struct ModeSpec {
  const char* name;
  bool pushdown;
  bool zones;
  bool simd;
};

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("E8 / predicate pushdown + zone maps vs filter-only");
  uint64_t tuples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  // The skip gate needs at least two row-blocks (4096 rows each): a
  // single-block fixture can never skip its own matching block.
  if (tuples < 10000) tuples = 10000;

  // Clustered fixture: id ascending, payload columns pseudo-random —
  // the NeedleTail-style layout where block skipping pays most.
  TempDir dir = CheckOk(TempDir::Create("nodb-selective"), "temp dir");
  std::string path = dir.FilePath("sel.csv");
  {
    std::string content;
    content.reserve(tuples * 40);
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint64_t r = 0; r < tuples; ++r) {
      content += std::to_string(r);
      for (uint32_t c = 0; c < kPayloadCols; ++c) {
        h = h * 6364136223846793005ull + 1442695040888963407ull;
        content += ',';
        content += std::to_string(h % 1000000);
      }
      content += '\n';
    }
    CheckOk(WriteStringToFile(path, content), "write fixture");
  }
  std::vector<Field> fields = {{"id", DataType::kInt64}};
  for (uint32_t c = 0; c < kPayloadCols; ++c) {
    fields.push_back(Field{"p" + std::to_string(c), DataType::kInt64});
  }
  auto schema = Schema::Make(std::move(fields));
  Catalog catalog;
  CheckOk(catalog.RegisterTable({"sel", path, schema, CsvDialect()}),
          "register");

  // The SIMD tentpole's hard gate on this fixture too: structural
  // indexing with the active tier must beat the scalar kernels >= 3x.
  GateStructuralSpeedup(path, CsvDialect(), 3.0);

  // `scalar` is the zones plan with enable_simd=false: the full
  // pushdown + zone-map machinery running on the fallback kernels must
  // stay byte-identical to everything else.
  const double selectivities[] = {0.001, 0.01, 0.1, 1.0};
  const ModeSpec modes[] = {{"off", false, false, true},
                            {"push", true, false, true},
                            {"zones", true, true, true},
                            {"scalar", true, true, false}};
  const char* run_names[] = {"cold", "warm", "store"};

  std::printf(
      "\nselectivity,mode,run,ms,rows_out,rows_scanned,zone_skipped_blocks,"
      "zone_skipped_rows,pruned,p1_fields,p2_fields,rows_store,rows_cache,"
      "rows_raw,identical\n");

  bool all_identical = true;
  uint64_t warm_zone_skips_at_lowest = 0;
  uint64_t warm_zone_total_blocks = 0;
  for (double sel : selectivities) {
    uint64_t cut = static_cast<uint64_t>(static_cast<double>(tuples) * sel);
    if (cut == 0) cut = 1;
    std::string sql = "SELECT id, p0, p1 FROM sel WHERE id < " +
                      std::to_string(cut);

    // The mode-off plan's rows are this selectivity's ground truth.
    std::vector<std::string> expected;
    for (const ModeSpec& mode : modes) {
      NoDbConfig config;
      config.enable_pushdown = mode.pushdown;
      config.enable_zone_maps = mode.zones;
      config.enable_simd = mode.simd;
      NoDbEngine engine(catalog, config);
      for (int run = 0; run < 3; ++run) {
        auto outcome = CheckOk(engine.Execute(sql), "query");
        engine.WaitForPromotions();
        const ScanMetrics& scan = outcome.metrics.scan;
        std::vector<std::string> rows = outcome.result.CanonicalRows();
        if (mode.pushdown == false && run == 0) expected = rows;
        bool identical = rows == expected;
        all_identical = all_identical && identical;
        if (mode.zones && run > 0 && sel == selectivities[0]) {
          warm_zone_skips_at_lowest += scan.zone_skipped_blocks;
          warm_zone_total_blocks +=
              (tuples + config.rows_per_block - 1) / config.rows_per_block;
        }
        std::printf(
            "%.3f,%s,%s,%.2f,%zu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%s\n",
            sel, mode.name, run_names[run],
            outcome.metrics.total_ns / 1e6, rows.size(),
            static_cast<unsigned long long>(scan.rows_scanned),
            static_cast<unsigned long long>(scan.zone_skipped_blocks),
            static_cast<unsigned long long>(scan.zone_skipped_rows),
            static_cast<unsigned long long>(scan.pushdown_rows_pruned),
            static_cast<unsigned long long>(scan.pushdown_phase1_fields),
            static_cast<unsigned long long>(scan.pushdown_phase2_fields),
            static_cast<unsigned long long>(scan.rows_from_store),
            static_cast<unsigned long long>(scan.rows_from_cache),
            static_cast<unsigned long long>(scan.rows_from_raw),
            identical ? "yes" : "NO");
      }
    }
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: pushdown plans diverged from the filter-only "
                 "plan\n");
    return 1;
  }
  // Acceptance: at 0.1%% selectivity over the clustered attribute the
  // warm zone-map runs must skip at least half of all blocks.
  if (warm_zone_skips_at_lowest * 2 < warm_zone_total_blocks) {
    std::fprintf(stderr,
                 "FAIL: zone maps skipped %llu of %llu blocks at the "
                 "lowest selectivity (expected >= 50%%)\n",
                 static_cast<unsigned long long>(warm_zone_skips_at_lowest),
                 static_cast<unsigned long long>(warm_zone_total_blocks));
    return 1;
  }
  std::printf(
      "\nshape: `push` converts far fewer phase-2 fields as selectivity "
      "drops; `zones` additionally skips disjoint blocks outright once "
      "warm (%llu of %llu at 0.1%% selectivity), with byte-identical "
      "rows on raw, cache and store tiers\n",
      static_cast<unsigned long long>(warm_zone_skips_at_lowest),
      static_cast<unsigned long long>(warm_zone_total_blocks));
  return 0;
}
