// Experiment E2 — Figure 2: the System Monitoring Panel.
//
// Runs a query sequence whose attribute windows shift over the file and
// emits, after every query, the panel the demo GUI shows: positional
// map and cache utilization, structure sizes, per-attribute access
// counts and coverage. A CSV series of utilization-per-query is printed
// for plotting the Figure-2 "Cache Utilization (%)" curve.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "engines/nodb_engine.h"
#include "monitor/panel.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

int main() {
  PrintHeader("E2 / Figure 2 - system monitoring panel");
  Workload w = MakeIntWorkload("mon", 60000, 30);

  NoDbConfig config;
  // Budgets sized so the workload fills a visible fraction and finally
  // overflows the map, as the demo's utilization bars show.
  config.positional_map_budget = 6u << 20;
  config.cache_budget = 24u << 20;
  NoDbEngine engine(w.catalog, config);

  struct Step {
    const char* label;
    std::string sql;
  };
  Step steps[] = {
      {"q1: first contact (attrs 0-2)",
       "SELECT attr0, attr1, attr2 FROM mon WHERE attr0 < 50000000"},
      {"q2: same window again (warm)",
       "SELECT attr0, attr1, attr2 FROM mon WHERE attr1 < 50000000"},
      {"q3: shift right (attrs 10-14)",
       "SELECT attr10, attr12, attr14 FROM mon WHERE attr12 < 50000000"},
      {"q4: far window (attrs 25-29)",
       "SELECT attr25, attr27, attr29 FROM mon WHERE attr27 < 50000000"},
      {"q5: aggregate over mixed attrs",
       "SELECT SUM(attr5) AS s, AVG(attr20) AS a FROM mon"},
      {"q6: full-width touch",
       "SELECT COUNT(*) AS n FROM mon WHERE attr29 > 0"},
  };

  std::printf("\nquery,map_utilization,cache_utilization,map_chunks,"
              "cache_segments,cache_hits,cache_misses\n");
  std::string panels;
  int qid = 0;
  for (const Step& step : steps) {
    ++qid;
    CheckOk(engine.Execute(step.sql).status(), step.label);
    const RawTableState* state = engine.table_state("mon");
    std::printf("%d,%.4f,%.4f,%zu,%zu,%llu,%llu\n", qid,
                state->map().utilization(), state->cache().utilization(),
                state->map().num_chunks(), state->cache().num_segments(),
                static_cast<unsigned long long>(state->cache().hits()),
                static_cast<unsigned long long>(state->cache().misses()));
    panels += "\nafter ";
    panels += step.label;
    panels += ":\n";
    panels += MonitorPanel::RenderTableState(*state);
  }
  std::printf("%s", panels.c_str());

  // --- the GUI's "vary the available space" interaction: re-run the
  // same workload under different map/cache budgets and report how
  // much of the adaptive benefit survives.
  std::printf(
      "\n--- budget interaction (same 6-query workload re-run) ---\n");
  std::printf("map_budget,cache_budget,workload_ms,map_evictions,"
              "cache_evictions,cache_hit_blocks\n");
  struct BudgetCase {
    size_t map;
    size_t cache;
  };
  BudgetCase cases[] = {
      {64u << 20, 256u << 20},  // effectively unlimited
      {6u << 20, 24u << 20},    // the run above
      {1u << 20, 4u << 20},     // tight
      {64u << 10, 256u << 10},  // thrashing
  };
  for (const BudgetCase& c : cases) {
    NoDbConfig budget_config;
    budget_config.positional_map_budget = c.map;
    budget_config.cache_budget = c.cache;
    NoDbEngine budget_engine(w.catalog, budget_config);
    Stopwatch watch;
    for (const Step& step : steps) {
      CheckOk(budget_engine.Execute(step.sql).status(), step.label);
    }
    // Second pass over the same workload shows retention quality.
    for (const Step& step : steps) {
      CheckOk(budget_engine.Execute(step.sql).status(), step.label);
    }
    const RawTableState* state = budget_engine.table_state("mon");
    std::printf("%s,%s,%.1f,%llu,%llu,%llu\n",
                FormatBytes(c.map).c_str(), FormatBytes(c.cache).c_str(),
                watch.ElapsedMillis(),
                static_cast<unsigned long long>(state->map().evictions()),
                static_cast<unsigned long long>(
                    state->cache().evictions()),
                static_cast<unsigned long long>(state->cache().hits()));
  }
  return 0;
}
